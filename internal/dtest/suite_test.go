package dtest_test

// External-package regression suite: drives the cascade over every t-space
// system of the full synthetic workload (all 13 programs, symbolic cases
// included) and pins three contracts of the pipeline refactor:
//
//   - Solve is byte-for-byte the legacy inline stage order
//     SVPC → Acyclic → Loop Residue → Fourier–Motzkin (Result AND Trace);
//   - a long-lived pipeline with scratch reuse matches throwaway Solve on
//     every problem of the suite;
//   - every verdict the default cascade reaches is cross-validated by the
//     fm-only configuration (Fourier–Motzkin alone).
//
// This file is an external test package because it imports
// internal/workload, which imports internal/core, which imports dtest.

import (
	"reflect"
	"testing"

	"exactdep/internal/dtest"
	"exactdep/internal/system"
	"exactdep/internal/workload"
)

// suiteSystems builds every preprocessed, GCD-feasible t-space system of the
// workload suite — the exact problem stream the analyzer hands the cascade.
func suiteSystems(t testing.TB) []*system.TSystem {
	t.Helper()
	var out []*system.TSystem
	for _, s := range workload.Programs() {
		cands, err := workload.Candidates(s, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cands {
			prob, err := system.Build(c.Pair)
			if err != nil {
				continue // constant or otherwise untestable pair
			}
			res, ts, err := system.Preprocess(prob)
			if err != nil || res != system.GCDDependent {
				continue
			}
			out = append(out, ts)
		}
	}
	if len(out) < 100 {
		t.Fatalf("suite yielded only %d systems — workload drifted", len(out))
	}
	return out
}

// legacyCascade replays the pre-pipeline inline stage order through the
// exported per-stage entry points.
func legacyCascade(ts *system.TSystem) (dtest.Result, dtest.Trace) {
	s := dtest.NewState(ts)
	tr := dtest.Trace{Consulted: []dtest.Kind{dtest.KindSVPC}}
	if r, ok := dtest.SVPC(s); ok {
		tr.Decided = dtest.KindSVPC
		return r, tr
	}
	tr.Consulted = append(tr.Consulted, dtest.KindAcyclic)
	r, next, ok := dtest.Acyclic(s)
	if ok {
		tr.Decided = dtest.KindAcyclic
		return r, tr
	}
	s = next
	tr.Consulted = append(tr.Consulted, dtest.KindLoopResidue)
	if r, ok := dtest.LoopResidue(s); ok {
		tr.Decided = dtest.KindLoopResidue
		return r, tr
	}
	tr.Consulted = append(tr.Consulted, dtest.KindFourierMotzkin)
	r = dtest.FourierMotzkin(s)
	tr.Decided = dtest.KindFourierMotzkin
	return r, tr
}

func sameResult(a, b dtest.Result) bool {
	return a.Outcome == b.Outcome && a.Exact == b.Exact && a.Kind == b.Kind &&
		sameWitness(a.Witness, b.Witness)
}

// sameWitness compares witnesses element-wise: a nil and an empty witness
// are the same zero-variable assignment (a scratch-backed buffer resliced to
// [:0] versus a fresh nil — no semantic difference).
func sameWitness(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameTrace(a, b dtest.Trace) bool {
	return a.Decided == b.Decided && reflect.DeepEqual(a.Consulted, b.Consulted)
}

// TestSuiteSolveMatchesLegacyCascade pins Solve (now a pipeline wrapper) to
// the inline stage order it replaced, on the full workload suite.
func TestSuiteSolveMatchesLegacyCascade(t *testing.T) {
	for i, ts := range suiteSystems(t) {
		gotR, gotTr := dtest.Solve(ts.Clone())
		wantR, wantTr := legacyCascade(ts.Clone())
		if !sameResult(gotR, wantR) {
			t.Fatalf("system %d: Solve %+v, legacy cascade %+v", i, gotR, wantR)
		}
		if !sameTrace(gotTr, wantTr) {
			t.Fatalf("system %d: Solve trace %+v, legacy trace %+v", i, gotTr, wantTr)
		}
	}
}

// TestSuiteSharedPipelineMatchesSolve runs one persistent pipeline (scratch
// reused across every problem of the suite, as the analyzer's workers do)
// against a fresh Solve per problem.
func TestSuiteSharedPipelineMatchesSolve(t *testing.T) {
	p := dtest.DefaultConfig().NewPipeline()
	for i, ts := range suiteSystems(t) {
		wantR, wantTr := dtest.Solve(ts.Clone())
		gotR, gotTr := p.RunTraced(ts)
		if !sameResult(gotR, wantR) {
			t.Fatalf("system %d: shared pipeline %+v, fresh Solve %+v", i, gotR, wantR)
		}
		if !sameTrace(gotTr, wantTr) {
			t.Fatalf("system %d: shared trace %+v, fresh trace %+v", i, gotTr, wantTr)
		}
	}
}

// TestSuiteFMOnlyCrossValidation: every problem the default cascade decides
// gets the same verdict from Fourier–Motzkin alone (when FM answers — it is
// exact unless it hits its caps), over the full workload suite.
func TestSuiteFMOnlyCrossValidation(t *testing.T) {
	full := dtest.DefaultConfig().NewPipeline()
	fm := dtest.FMOnlyConfig().NewPipeline()
	agreed := 0
	for i, ts := range suiteSystems(t) {
		r := full.Run(ts.Clone())
		if r.Outcome == dtest.Unknown {
			continue
		}
		fr := fm.Run(ts)
		if fr.Outcome == dtest.Unknown {
			continue // FM hit its size caps on a problem a cheap test decided
		}
		if r.Outcome != fr.Outcome {
			t.Fatalf("system %d: cascade (%v) says %v, fm-only says %v", i, r.Kind, r.Outcome, fr.Outcome)
		}
		agreed++
	}
	if agreed < 100 {
		t.Fatalf("only %d comparable systems — suite drifted", agreed)
	}
}
