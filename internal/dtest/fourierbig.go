package dtest

import (
	"math/big"

	"exactdep/internal/system"
)

// Arbitrary-precision Fourier–Motzkin, used as a fallback when the checked
// int64 path overflows. Coefficient growth is the known weakness of FM —
// each elimination multiplies coefficients — so rather than returning a
// safe-but-inexact Unknown, the cascade retries here and stays exact. The
// structural caps (constraint count, branch depth) still apply.

// bigCons is one constraint Σ Coef·t ≤ C over big integers.
type bigCons struct {
	coef []*big.Int
	c    *big.Int
}

func toBig(cs []system.Constraint) []bigCons {
	out := make([]bigCons, len(cs))
	for i, c := range cs {
		bc := bigCons{coef: make([]*big.Int, len(c.Coef)), c: big.NewInt(c.C)}
		for j, v := range c.Coef {
			bc.coef[j] = big.NewInt(v)
		}
		out[i] = bc
	}
	return out
}

// normalizeBig divides by the gcd of the coefficients, flooring the
// constant; it reports feasible=false for a constant contradiction and
// vacuous=true for 0 ≤ C with C ≥ 0.
func normalizeBig(c bigCons) (out bigCons, feasible, vacuous bool) {
	g := new(big.Int)
	for _, v := range c.coef {
		g.GCD(nil, nil, g, new(big.Int).Abs(v))
	}
	if g.Sign() == 0 {
		return c, c.c.Sign() >= 0, true
	}
	if g.Cmp(big.NewInt(1)) > 0 {
		nc := bigCons{coef: make([]*big.Int, len(c.coef)), c: new(big.Int)}
		for j, v := range c.coef {
			nc.coef[j] = new(big.Int).Quo(v, g)
		}
		// floor division for the constant
		nc.c.Div(c.c, g)
		c = nc
	}
	return c, true, false
}

// fmSolveBig mirrors fmSolve over big integers, drawing from the same
// budget state (the retry is part of the same problem's spend).
func fmSolveBig(cons []bigCons, n, depth int, bs *budgetState) Result {
	if bs.tripped() {
		return bs.maybe()
	}
	work := cons
	remaining := make([]bool, n)
	for i := range remaining {
		remaining[i] = true
	}
	type elim struct {
		v              int
		lowers, uppers []bigCons
	}
	var order []elim

	numRemaining := n
	for numRemaining > 0 {
		v := pickBigVar(work, remaining, n)
		if v < 0 {
			break
		}
		if !bs.chargeElim() {
			return bs.maybe()
		}
		var lowers, uppers, rest []bigCons
		for _, c := range work {
			switch c.coef[v].Sign() {
			case 1:
				uppers = append(uppers, c)
			case -1:
				lowers = append(lowers, c)
			default:
				rest = append(rest, c)
			}
		}
		order = append(order, elim{v: v, lowers: lowers, uppers: uppers})
		for _, lo := range lowers {
			for _, up := range uppers {
				a := new(big.Int).Neg(lo.coef[v]) // > 0
				b := up.coef[v]                   // > 0
				nc := bigCons{coef: make([]*big.Int, n), c: new(big.Int)}
				for j := 0; j < n; j++ {
					t1 := new(big.Int).Mul(a, up.coef[j])
					t2 := new(big.Int).Mul(b, lo.coef[j])
					nc.coef[j] = t1.Add(t1, t2)
				}
				t1 := new(big.Int).Mul(a, up.c)
				t2 := new(big.Int).Mul(b, lo.c)
				nc.c.Add(t1, t2)
				nc.coef[v].SetInt64(0)
				norm, feasible, vacuous := normalizeBig(nc)
				if !feasible {
					return independent(KindFourierMotzkin)
				}
				if vacuous {
					continue
				}
				if !bs.chargeCons() {
					return bs.maybe()
				}
				rest = append(rest, norm)
				if len(rest) > maxFMConstraints {
					return unknownCap()
				}
			}
		}
		work = rest
		remaining[v] = false
		numRemaining--
	}
	for _, c := range work {
		if allZero(c.coef) && c.c.Sign() < 0 {
			return independent(KindFourierMotzkin)
		}
	}

	// Back-substitution with exact rationals.
	val := make([]*big.Int, n)
	for i := range val {
		val[i] = new(big.Int)
	}
	chosen := make([]bool, n)
	for k := len(order) - 1; k >= 0; k-- {
		e := order[k]
		lo, up, hasLo, hasUp := bigRange(e.lowers, e.uppers, e.v, val, chosen)
		var pick *big.Int
		switch {
		case !hasLo && !hasUp:
			pick = big.NewInt(0)
		case !hasLo:
			pick = ratFloor(up)
		case !hasUp:
			pick = ratCeil(lo)
		default:
			cl, fu := ratCeil(lo), ratFloor(up)
			if cl.Cmp(fu) <= 0 {
				pick = new(big.Int).Add(cl, new(big.Int).Quo(new(big.Int).Sub(fu, cl), big.NewInt(2)))
			} else {
				if k == len(order)-1 {
					return independent(KindFourierMotzkin)
				}
				return fmBranchBig(cons, n, depth, e.v, ratFloor(lo), ratCeil(up), bs)
			}
		}
		val[e.v].Set(pick)
		chosen[e.v] = true
	}
	w := make([]int64, n)
	for i, v := range val {
		if !v.IsInt64() {
			// witness exceeds int64: dependence is proven, but drop the
			// unreportable witness
			return dependent(KindFourierMotzkin, nil)
		}
		w[i] = v.Int64()
	}
	return dependent(KindFourierMotzkin, w)
}

func allZero(coef []*big.Int) bool {
	for _, v := range coef {
		if v.Sign() != 0 {
			return false
		}
	}
	return true
}

func pickBigVar(cons []bigCons, remaining []bool, n int) int {
	best, bestCost := -1, 0
	for v := 0; v < n; v++ {
		if !remaining[v] {
			continue
		}
		lo, up := 0, 0
		for _, c := range cons {
			switch c.coef[v].Sign() {
			case 1:
				up++
			case -1:
				lo++
			}
		}
		if lo == 0 && up == 0 {
			continue
		}
		if cost := lo * up; best == -1 || cost < bestCost {
			best, bestCost = v, cost
		}
	}
	return best
}

// bigRange computes the tightest rational bounds on variable v given chosen
// values.
func bigRange(lowers, uppers []bigCons, v int, val []*big.Int, chosen []bool) (lo, up *big.Rat, hasLo, hasUp bool) {
	eval := func(c bigCons) *big.Rat {
		num := new(big.Int).Set(c.c)
		for j, a := range c.coef {
			if j == v || a.Sign() == 0 || !chosen[j] {
				continue
			}
			num.Sub(num, new(big.Int).Mul(a, val[j]))
		}
		return new(big.Rat).SetFrac(num, c.coef[v])
	}
	for _, c := range lowers {
		b := eval(c)
		if !hasLo || b.Cmp(lo) > 0 {
			lo, hasLo = b, true
		}
	}
	for _, c := range uppers {
		b := eval(c)
		if !hasUp || b.Cmp(up) < 0 {
			up, hasUp = b, true
		}
	}
	return lo, up, hasLo, hasUp
}

func ratFloor(r *big.Rat) *big.Int {
	out := new(big.Int)
	out.Div(r.Num(), r.Denom()) // big.Int.Div is floored for positive denom
	return out
}

func ratCeil(r *big.Rat) *big.Int {
	out := new(big.Int)
	m := new(big.Int)
	out.DivMod(r.Num(), r.Denom(), m)
	if m.Sign() != 0 {
		out.Add(out, big.NewInt(1))
	}
	return out
}

func fmBranchBig(cons []bigCons, n, depth, v int, floor, ceil *big.Int, bs *budgetState) Result {
	if !EnableExplicitBranchAndBound || depth >= maxBranchDepth {
		return unknown(KindFourierMotzkin)
	}
	if !bs.chargeNode() {
		return bs.maybe()
	}
	mk := func(sign int64, bound *big.Int) []bigCons {
		coef := make([]*big.Int, n)
		for i := range coef {
			coef[i] = big.NewInt(0)
		}
		coef[v] = big.NewInt(sign)
		c := new(big.Int).Set(bound)
		if sign < 0 {
			c.Neg(c)
		}
		out := make([]bigCons, len(cons), len(cons)+1)
		copy(out, cons)
		return append(out, bigCons{coef: coef, c: c})
	}
	left := fmSolveBig(mk(1, floor), n, depth+1, bs)
	if left.Outcome == Dependent && left.Exact {
		return left
	}
	right := fmSolveBig(mk(-1, ceil), n, depth+1, bs)
	if right.Outcome == Dependent && right.Exact {
		return right
	}
	if left.Outcome == Maybe || right.Outcome == Maybe {
		return bs.maybe()
	}
	if left.Outcome == Independent && right.Outcome == Independent {
		return independent(KindFourierMotzkin)
	}
	return unknown(KindFourierMotzkin)
}
