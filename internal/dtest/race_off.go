//go:build !race

package dtest

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
