package dtest

// SVPC runs the Single Variable Per Constraint test (paper §3.2): when every
// constraint involves at most one variable, each constraint is simply an
// upper or lower bound for that variable; the system is dependent iff every
// variable's tightest lower bound is at most its tightest upper bound. The
// test is exact and runs in O(constraints + variables).
//
// The second return value reports applicability: false means some constraint
// involves two or more variables and the cascade must move on.
func SVPC(s *state) (Result, bool) {
	if len(s.multi) > 0 {
		return Result{}, false
	}
	if s.infeasible || s.firstConflict() >= 0 {
		return independent(KindSVPC), true
	}
	return dependent(KindSVPC, s.boundsWitness()), true
}
