package dtest

// SVPC runs the Single Variable Per Constraint test (paper §3.2): when every
// constraint involves at most one variable, each constraint is simply an
// upper or lower bound for that variable; the system is dependent iff every
// variable's tightest lower bound is at most its tightest upper bound. The
// test is exact and runs in O(constraints + variables).
//
// The second return value reports applicability: false means some constraint
// involves two or more variables and the cascade must move on.
func SVPC(s *state) (Result, bool) {
	r, ok, _ := svpc(s, nil)
	return r, ok
}

// svpc is SVPC writing any witness into wbuf (grown as needed and returned,
// so a pipeline can keep the buffer across problems).
func svpc(s *state, wbuf []int64) (Result, bool, []int64) {
	if len(s.multi) > 0 {
		return Result{}, false, wbuf
	}
	if s.infeasible || s.firstConflict() >= 0 {
		return independent(KindSVPC), true, wbuf
	}
	w := s.boundsWitness(wbuf)
	return dependent(KindSVPC, w), true, w
}
