package dtest

// Adversarial tests for the resource-budget layer: every TripReason must be
// reachable, count-limited verdicts must be deterministic, generous budgets
// must not change any verdict, and installing a budget must not cost the
// cheap cascade path its zero-allocation steady state.

import (
	"testing"
	"time"

	"exactdep/internal/system"
)

// denseBlowupSys is the constraint-multiplication stress system from
// TestConstraintBlowupCap: n variables, every pair coupled twice with
// distinct coefficient shapes, so Fourier–Motzkin performs many eliminations
// and derives many constraints before any structural cap fires.
func denseBlowupSys() *system.TSystem {
	const n = 12
	var cs []system.Constraint
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c1 := make([]int64, n)
			c1[i], c1[j] = 2, 3
			cs = append(cs, system.Constraint{Coef: c1, C: int64(i + j)})
			c2 := make([]int64, n)
			c2[i], c2[j] = -3, -2
			cs = append(cs, system.Constraint{Coef: c2, C: int64(i - j)})
		}
	}
	return sys(n, cs...)
}

// sliverSys has a fractional-only sample range (t2 = 0 forces t1 = 1/2), so
// the full cascade falls through to Fourier–Motzkin and resolves it with
// branch-and-bound (see TestBranchDepthLimit).
func sliverSys() *system.TSystem {
	return sys(2,
		cons(1, 2, -3), cons(-1, -2, 3), // 2t1 - 3t2 = 1
		cons(0, 0, 1), cons(0, 0, -1), // t2 = 0
	)
}

func TestBudgetZeroValueUnlimited(t *testing.T) {
	var b Budget
	if b.Limited() {
		t.Fatal("zero Budget must be unlimited")
	}
	if !b.Class().Exhaustive() {
		t.Fatal("zero Budget's class must be exhaustive")
	}
	p := DefaultConfig().NewPipeline()
	p.SetBudget(b)
	if r := p.Run(sliverSys()); r.Outcome != Independent || !r.Exact || r.Trip != TripNone {
		t.Fatalf("unlimited budget changed the verdict: %v", r)
	}
}

func TestBudgetClass(t *testing.T) {
	b := Budget{
		MaxFMEliminations: 3, MaxBranchNodes: 7, MaxConstraints: 11,
		MaxDuration: time.Second, Deadline: time.Now().Add(time.Hour),
	}
	if !b.Limited() {
		t.Fatal("want Limited")
	}
	c := b.Class()
	if c != (BudgetClass{FMEliminations: 3, BranchNodes: 7, Constraints: 11}) {
		t.Fatalf("class = %+v", c)
	}
	if c.Exhaustive() {
		t.Fatal("count-limited class must not be exhaustive")
	}
	// Clock limits alone leave the class exhaustive: they never produce
	// cacheable verdicts, so they must not fragment the cache keyspace.
	clockOnly := Budget{MaxDuration: time.Millisecond}
	if !clockOnly.Limited() || !clockOnly.Class().Exhaustive() {
		t.Fatalf("clock-only budget: Limited=%v class=%+v", clockOnly.Limited(), clockOnly.Class())
	}
}

// TestBudgetStateCharges unit-tests the metering: each charge kind trips at
// its own limit with its own reason, and the first trip sticks.
func TestBudgetStateCharges(t *testing.T) {
	bs := budgetState{limits: Budget{MaxFMEliminations: 2}}
	bs.reset()
	if !bs.chargeElim() || !bs.chargeElim() {
		t.Fatal("charges within limit must succeed")
	}
	if bs.chargeElim() {
		t.Fatal("third elimination must trip")
	}
	if bs.trip != TripFMEliminations {
		t.Fatalf("trip = %v", bs.trip)
	}
	// The first trip is sticky: other charge kinds now fail without
	// overwriting the recorded reason.
	if bs.chargeNode() || bs.chargeCons() {
		t.Fatal("charges after a trip must fail")
	}
	if bs.trip != TripFMEliminations {
		t.Fatalf("trip overwritten to %v", bs.trip)
	}
	if m := bs.maybe(); m.Outcome != Maybe || m.Kind != KindFourierMotzkin || m.Trip != TripFMEliminations || m.Exact || m.Witness != nil {
		t.Fatalf("maybe() = %v", m)
	}

	bs = budgetState{limits: Budget{MaxBranchNodes: 1}}
	bs.reset()
	if !bs.chargeNode() {
		t.Fatal("first node within limit")
	}
	if bs.chargeNode() || bs.trip != TripBranchNodes {
		t.Fatalf("second node: trip = %v", bs.trip)
	}

	bs = budgetState{limits: Budget{MaxConstraints: 1}}
	bs.reset()
	if !bs.chargeCons() {
		t.Fatal("first constraint within limit")
	}
	if bs.chargeCons() || bs.trip != TripConstraints {
		t.Fatalf("second constraint: trip = %v", bs.trip)
	}

	// reset clears counters and the trip.
	bs.reset()
	if bs.tripped() || !bs.chargeCons() {
		t.Fatal("reset must re-arm the budget")
	}
}

func TestBudgetTripFMEliminations(t *testing.T) {
	p := FMOnlyConfig().NewPipeline()
	p.SetBudget(Budget{MaxFMEliminations: 1})
	r := p.Run(denseBlowupSys())
	if r.Outcome != Maybe || r.Exact || r.Trip != TripFMEliminations {
		t.Fatalf("got %v", r)
	}
}

func TestBudgetTripConstraints(t *testing.T) {
	p := FMOnlyConfig().NewPipeline()
	p.SetBudget(Budget{MaxConstraints: 4})
	r := p.Run(denseBlowupSys())
	if r.Outcome != Maybe || r.Exact || r.Trip != TripConstraints {
		t.Fatalf("got %v", r)
	}
}

// TestBudgetTripBranchNodes drives fmSolve directly with a budget state that
// has one branch node already spent, so the sliver system's (single) branch
// is the one that trips.
func TestBudgetTripBranchNodes(t *testing.T) {
	sc := newScratch()
	cs := NewState(sliverSys()).allConstraintsInto(sc)
	bs := &budgetState{limits: Budget{MaxBranchNodes: 1}}
	bs.reset()
	bs.nodes = 1
	r := fmSolve(cs, 2, 0, bs, &sc.fm, &sc.sys)
	if r.Outcome != Maybe || r.Trip != TripBranchNodes {
		t.Fatalf("got %v", r)
	}
}

// TestBudgetMetersBigRetry pins that the big-integer retry draws from the
// same per-problem budget: the int64 pass overflows (spending one
// elimination), and the retry's first elimination is the one that trips.
func TestBudgetMetersBigRetry(t *testing.T) {
	big := int64(1) << 61
	ts := sys(2,
		cons(1, big, big-1),
		cons(-3, -(big-3), -(big-5)),
		cons(10, 1, 0), cons(0, -1, 0),
		cons(10, 0, 1), cons(0, 0, -1),
	)
	p := FMOnlyConfig().NewPipeline()

	// Unbudgeted baseline: the retry decides exactly.
	if r := p.Run(ts); !r.Exact {
		t.Fatalf("unbudgeted baseline must be exact, got %v", r)
	}

	p.SetBudget(Budget{MaxFMEliminations: 1})
	r := p.Run(ts)
	if r.Outcome != Maybe || r.Trip != TripFMEliminations {
		t.Fatalf("got %v", r)
	}
}

func TestBudgetDeadlineTrip(t *testing.T) {
	p := DefaultConfig().NewPipeline()
	p.SetBudget(Budget{Deadline: time.Now().Add(-time.Hour)})
	r := p.Run(sliverSys())
	if r.Outcome != Maybe || r.Exact || r.Trip != TripDeadline {
		t.Fatalf("got %v", r)
	}
	// Clearing the budget re-arms the scratch: the same pipeline must solve
	// the same problem exactly again.
	p.SetBudget(Budget{})
	if r := p.Run(sliverSys()); r.Outcome != Independent || !r.Exact {
		t.Fatalf("after clearing budget: %v", r)
	}
}

func TestBudgetCancelTrip(t *testing.T) {
	p := DefaultConfig().NewPipeline()
	done := make(chan struct{})
	close(done)
	p.SetCancel(done)
	r := p.Run(sliverSys())
	if r.Outcome != Maybe || r.Exact || r.Trip != TripCancelled {
		t.Fatalf("got %v", r)
	}
	p.SetCancel(nil)
	if r := p.Run(sliverSys()); r.Outcome != Independent || !r.Exact {
		t.Fatalf("after clearing cancel: %v", r)
	}
}

// TestBudgetCheapTestsUnmetered pins the design point that only the
// Fourier–Motzkin stage consults the budget: a problem decided by a cheap
// test is immune even to an already-expired deadline.
func TestBudgetCheapTestsUnmetered(t *testing.T) {
	p := DefaultConfig().NewPipeline()
	p.SetBudget(Budget{Deadline: time.Now().Add(-time.Hour), MaxFMEliminations: 1, MaxConstraints: 1})
	for _, ts := range []*system.TSystem{svpcSys(), acyclicSys(), residueSys(), residueDepSys()} {
		r := p.Run(ts)
		if !r.Exact || r.Trip != TripNone {
			t.Fatalf("cheap-test problem degraded under budget: %v", r)
		}
	}
}

// TestBudgetCountTripsDeterministic: count-limited verdicts depend only on
// the problem and the limits, never on scheduling — the property that makes
// them safe to memoize per budget class.
func TestBudgetCountTripsDeterministic(t *testing.T) {
	systems := []*system.TSystem{denseBlowupSys(), sliverSys(), fmSys()}
	budgets := []Budget{
		{MaxFMEliminations: 1},
		{MaxConstraints: 4},
		{MaxFMEliminations: 3, MaxConstraints: 50},
	}
	for bi, b := range budgets {
		for si, ts := range systems {
			var first Result
			for trial := 0; trial < 4; trial++ {
				p := FMOnlyConfig().NewPipeline() // fresh pipeline per trial
				p.SetBudget(b)
				r := p.Run(ts)
				r.Witness = append([]int64(nil), r.Witness...)
				if trial == 0 {
					first = r
					continue
				}
				if r.Outcome != first.Outcome || r.Exact != first.Exact || r.Trip != first.Trip {
					t.Fatalf("budget %d system %d: trial %d got %v, want %v", bi, si, trial, r, first)
				}
			}
		}
	}
}

// TestBudgetGenerousMatchesUnbudgeted: limits far above any real spend must
// leave every verdict byte-identical to the unbudgeted run.
func TestBudgetGenerousMatchesUnbudgeted(t *testing.T) {
	systems := []*system.TSystem{
		svpcSys(), acyclicSys(), residueSys(), residueDepSys(),
		fmSys(), sliverSys(), denseBlowupSys(),
	}
	base := DefaultConfig().NewPipeline()
	generous := DefaultConfig().NewPipeline()
	generous.SetBudget(Budget{MaxFMEliminations: 1 << 30, MaxBranchNodes: 1 << 30, MaxConstraints: 1 << 30})
	for i, ts := range systems {
		want := base.Run(ts)
		wantW := append([]int64(nil), want.Witness...)
		got := generous.Run(ts)
		if got.Outcome != want.Outcome || got.Exact != want.Exact || got.Kind != want.Kind || got.Trip != TripNone {
			t.Fatalf("system %d: budgeted %v vs unbudgeted %v", i, got, want)
		}
		if len(got.Witness) != len(wantW) {
			t.Fatalf("system %d: witness diverged", i)
		}
		for j := range wantW {
			if got.Witness[j] != wantW[j] {
				t.Fatalf("system %d: witness diverged at %d", i, j)
			}
		}
	}
}

// TestBudgetZeroAllocs enforces the acceptance criterion that metering adds
// no allocations: with a fully armed budget (counts, duration, cancel
// channel), a problem decided by a cheap test still allocates nothing at
// steady state, and a budget *trip* on the expensive path allocates no more
// than the unbudgeted Fourier–Motzkin entry itself.
func TestBudgetZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation")
	}
	p := DefaultConfig().NewPipeline()
	p.SetBudget(Budget{
		MaxFMEliminations: 1 << 20, MaxBranchNodes: 1 << 20, MaxConstraints: 1 << 20,
		MaxDuration: time.Hour,
	})
	p.SetCancel(make(chan struct{}))
	systems := []*system.TSystem{svpcSys(), acyclicSys(), residueSys(), residueDepSys()}
	for i := 0; i < 3; i++ {
		for _, ts := range systems {
			p.Run(ts)
		}
	}
	n := testing.AllocsPerRun(50, func() {
		for _, ts := range systems {
			p.Run(ts)
		}
	})
	if n != 0 {
		t.Errorf("budgeted steady-state cascade allocated %.1f times per 4-problem batch", n)
	}

	// A tripped run still pays Fourier–Motzkin's own entry workspace (the
	// stage is documented to allocate), but the metering itself must add
	// nothing: cutting the problem short cannot cost more than solving it.
	ts := sliverSys()
	full := DefaultConfig().NewPipeline()
	for i := 0; i < 3; i++ {
		full.Run(ts)
	}
	baseline := testing.AllocsPerRun(100, func() { full.Run(ts) })

	trip := DefaultConfig().NewPipeline()
	trip.SetBudget(Budget{MaxFMEliminations: 1})
	for i := 0; i < 3; i++ {
		if r := trip.Run(ts); r.Outcome != Maybe {
			t.Fatalf("warmup run not degraded: %v", r)
		}
	}
	n = testing.AllocsPerRun(100, func() { trip.Run(ts) })
	if n > baseline {
		t.Errorf("tripped run allocated %.1f times per problem, unbudgeted run %.1f", n, baseline)
	}
}
