package dtest

import (
	"exactdep/internal/linalg"
	"exactdep/internal/system"
)

// FM tuning knobs. The paper reports that explicit branch-and-bound was
// never required on the PERFECT Club; the limits exist to bound worst-case
// behaviour on adversarial inputs, where exceeding them yields a safe
// (inexact) "assume dependent".
const (
	maxFMConstraints = 20000
	maxBranchDepth   = 12
)

// EnableExplicitBranchAndBound controls whether Fourier–Motzkin splits on
// fractional sample ranges. The paper's implementation never branched
// explicitly — its four fractional-distance cases were instead resolved by
// the *implicit* branch-and-bound of direction-vector refinement (§6).
// Disabling this reproduces that behaviour: FM returns Unknown on a
// fractional gap and the direction machinery finishes the proof. The
// experiment harness toggles it; it is not safe to flip concurrently with
// running tests.
var EnableExplicitBranchAndBound = true

// FourierMotzkin runs the backup test (paper §3.5): rational Fourier–Motzkin
// elimination, which is exact for independence; a mid-of-range integer
// back-substitution heuristic, which is exact for dependence when it finds
// an integral sample; the paper's first-variable special case (an empty
// integer range before any choice has been made proves independence); and
// branch-and-bound on the first fractional range otherwise.
// This convenience wrapper allocates a private scratch; the pipeline calls
// fourierApply on its own.
func FourierMotzkin(s *state) Result {
	return fourierApply(s, newScratch())
}

// fourierApply is FourierMotzkin drawing the flat constraint list and its
// bound rows from sc. The elimination itself still allocates — it is the
// rare, expensive end of the cascade, and its workspace shape depends on
// how constraints multiply during elimination. The scratch's budget meters
// the work; charges accumulate across the int64 pass, the big-integer
// retry, and every branch-and-bound subproblem, so the budget bounds the
// problem's *total* spend.
func fourierApply(s *state, sc *Scratch) Result {
	if s.infeasible || s.firstConflict() >= 0 {
		// A constant constraint already refuted the system during
		// classification (state drops it from the constraint list, so the
		// verdict must be taken from the flag).
		return independent(KindFourierMotzkin)
	}
	cons := s.allConstraintsInto(sc)
	r := fmSolve(cons, s.n, 0, &sc.bud)
	if r.Outcome == Unknown {
		// The fast path gave up — possibly from int64 overflow in the
		// coefficient growth FM is notorious for. Retry with arbitrary
		// precision; structural limits (constraint cap, branch depth) still
		// bound the work.
		r = fmSolveBig(toBig(cons), s.n, 0, &sc.bud)
	}
	return r
}

// fmEliminated records the constraints bounding one eliminated variable, for
// back-substitution.
type fmEliminated struct {
	v      int
	lowers []system.Constraint // coefficient of v is negative
	uppers []system.Constraint // coefficient of v is positive
}

func fmSolve(cons []system.Constraint, n, depth int, bs *budgetState) Result {
	if bs.tripped() {
		return bs.maybe()
	}
	work := cons
	remaining := make([]bool, n)
	numRemaining := 0
	for i := 0; i < n; i++ {
		remaining[i] = true
		numRemaining++
	}
	var order []fmEliminated

	for numRemaining > 0 {
		v := pickFMVar(work, remaining, n)
		if v < 0 {
			break // no remaining variable occurs in any constraint
		}
		if !bs.chargeElim() {
			return bs.maybe()
		}
		var lowers, uppers, rest []system.Constraint
		for _, c := range work {
			switch {
			case c.Coef[v] > 0:
				uppers = append(uppers, c)
			case c.Coef[v] < 0:
				lowers = append(lowers, c)
			default:
				rest = append(rest, c)
			}
		}
		order = append(order, fmEliminated{v: v, lowers: lowers, uppers: uppers})
		// combine every (lower, upper) pair, cancelling v
		for _, lo := range lowers {
			for _, up := range uppers {
				nc, feasible, err := fmCombine(lo, up, v)
				if err != nil {
					return unknown(KindFourierMotzkin)
				}
				if !feasible {
					return independent(KindFourierMotzkin)
				}
				if nc != nil {
					if !bs.chargeCons() {
						return bs.maybe()
					}
					rest = append(rest, *nc)
					if len(rest) > maxFMConstraints {
						return unknown(KindFourierMotzkin)
					}
				}
			}
		}
		work = rest
		remaining[v] = false
		numRemaining--
	}
	// Any leftover constraints involve no remaining variables... they were
	// constant and already filtered by fmCombine/Normalize; check residuals.
	for _, c := range work {
		if c.NumVarsUsed() == 0 && c.C < 0 {
			return independent(KindFourierMotzkin)
		}
	}

	// A real solution exists. Back-substitute in reverse elimination order,
	// choosing the middle integer of each allowed range.
	val := make([]int64, n)   // chosen sample
	chosen := make([]bool, n) // whether val[i] is set
	for k := len(order) - 1; k >= 0; k-- {
		e := order[k]
		pick, bracketLo, bracketHi, ok, err := fmRange(e, val, chosen)
		if err != nil {
			return unknown(KindFourierMotzkin)
		}
		if !ok {
			// Empty rational range cannot happen (elimination proved real
			// feasibility), so ok=false means no *integer* in the range.
			if k == len(order)-1 {
				// Paper's special case: no other variable has been chosen
				// yet, so the empty integer range is unconditional.
				return independent(KindFourierMotzkin)
			}
			return fmBranch(cons, n, depth, e.v, bracketLo, bracketHi, bs)
		}
		val[e.v] = pick
		chosen[e.v] = true
	}
	return dependent(KindFourierMotzkin, val)
}

// pickFMVar chooses the next variable to eliminate: the one minimizing the
// product of its lower and upper constraint counts (the standard heuristic
// that minimizes fill-in).
func pickFMVar(cons []system.Constraint, remaining []bool, n int) int {
	best, bestCost := -1, 0
	for v := 0; v < n; v++ {
		if !remaining[v] {
			continue
		}
		lo, up := 0, 0
		for _, c := range cons {
			switch {
			case c.Coef[v] > 0:
				up++
			case c.Coef[v] < 0:
				lo++
			}
		}
		if lo == 0 && up == 0 {
			continue
		}
		cost := lo * up
		if best == -1 || cost < bestCost {
			best, bestCost = v, cost
		}
	}
	return best
}

// fmCombine cancels variable v between a lower constraint (coef < 0) and an
// upper constraint (coef > 0):  |b|·upper + a·lower with a = -lo.Coef[v],
// b = up.Coef[v]. It returns nil for a vacuous result, feasible=false for a
// constant contradiction, or the normalized combined constraint.
func fmCombine(lo, up system.Constraint, v int) (*system.Constraint, bool, error) {
	a := -lo.Coef[v] // > 0
	b := up.Coef[v]  // > 0
	coef := make([]int64, len(lo.Coef))
	for i := range coef {
		p1, err := linalg.MulChecked(a, up.Coef[i])
		if err != nil {
			return nil, true, err
		}
		p2, err := linalg.MulChecked(b, lo.Coef[i])
		if err != nil {
			return nil, true, err
		}
		if coef[i], err = linalg.AddChecked(p1, p2); err != nil {
			return nil, true, err
		}
	}
	p1, err := linalg.MulChecked(a, up.C)
	if err != nil {
		return nil, true, err
	}
	p2, err := linalg.MulChecked(b, lo.C)
	if err != nil {
		return nil, true, err
	}
	cc, err := linalg.AddChecked(p1, p2)
	if err != nil {
		return nil, true, err
	}
	coef[v] = 0
	norm, feasible := (system.Constraint{Coef: coef, C: cc}).Normalize()
	if !feasible {
		return nil, false, nil
	}
	if norm.NumVarsUsed() == 0 {
		return nil, true, nil // vacuous 0 ≤ C
	}
	return &norm, true, nil
}

// fmRange computes the allowed rational range of e.v given already-chosen
// values. On success it returns the middle integer of the range in pick with
// ok=true. With no integer in the (nonempty real) range it returns ok=false
// and the bracketing integers ⌊lo⌋ and ⌈up⌉ for branch-and-bound.
func fmRange(e fmEliminated, val []int64, chosen []bool) (pick, bracketLo, bracketHi int64, ok bool, err error) {
	var hasLo, hasUp bool
	var loR, upR linalg.Rat
	for _, c := range e.lowers {
		// a·v + Σ rest ≤ C with a < 0  →  v ≥ (C - Σ rest)/a
		bound, err2 := fmEval(c, e.v, val, chosen)
		if err2 != nil {
			return 0, 0, 0, false, err2
		}
		if !hasLo {
			loR, hasLo = bound, true
		} else if cmp, err2 := bound.Cmp(loR); err2 != nil {
			return 0, 0, 0, false, err2
		} else if cmp > 0 {
			loR = bound
		}
	}
	for _, c := range e.uppers {
		bound, err2 := fmEval(c, e.v, val, chosen)
		if err2 != nil {
			return 0, 0, 0, false, err2
		}
		if !hasUp {
			upR, hasUp = bound, true
		} else if cmp, err2 := bound.Cmp(upR); err2 != nil {
			return 0, 0, 0, false, err2
		} else if cmp < 0 {
			upR = bound
		}
	}
	switch {
	case !hasLo && !hasUp:
		return 0, 0, 0, true, nil
	case !hasLo:
		return upR.Floor(), 0, 0, true, nil
	case !hasUp:
		return loR.Ceil(), 0, 0, true, nil
	}
	cl, fu := loR.Ceil(), upR.Floor()
	if cl <= fu {
		return cl + (fu-cl)/2, 0, 0, true, nil
	}
	// no integer in [loR, upR]
	return 0, loR.Floor(), upR.Ceil(), false, nil
}

// fmEval computes the bound that constraint c imposes on variable v given
// the chosen values of later variables: (C - Σ_{j≠v} coef_j·val_j) / coef_v.
func fmEval(c system.Constraint, v int, val []int64, chosen []bool) (linalg.Rat, error) {
	num := linalg.RatInt(c.C)
	for j, a := range c.Coef {
		if j == v || a == 0 {
			continue
		}
		if !chosen[j] {
			// Unchosen variables with nonzero coefficients cannot occur:
			// elimination ordered the constraints so that every other
			// variable of c was eliminated earlier (chosen later in the
			// backward pass). Treat defensively as 0.
			continue
		}
		p, err := linalg.MulChecked(a, val[j])
		if err != nil {
			return linalg.Rat{}, err
		}
		num, err = num.Sub(linalg.RatInt(p))
		if err != nil {
			return linalg.Rat{}, err
		}
	}
	return num.Div(linalg.RatInt(c.Coef[v]))
}

// fmBranch implements the paper's branch-and-bound: when the sample range
// for v contains no integer, split the original system on v ≤ ⌊·⌋ and
// v ≥ ⌈·⌉. Both independent → independent; any exact dependent → dependent.
// A budget trip anywhere in the subtree surfaces as Maybe: one unresolved
// branch leaves the split inconclusive, so the conservative verdict is the
// only sound summary.
func fmBranch(cons []system.Constraint, n, depth, v int, floor, ceil int64, bs *budgetState) Result {
	if !EnableExplicitBranchAndBound || depth >= maxBranchDepth {
		return unknown(KindFourierMotzkin)
	}
	if !bs.chargeNode() {
		return bs.maybe()
	}
	mk := func(coefV, c int64) []system.Constraint {
		coef := make([]int64, n)
		coef[v] = coefV
		out := make([]system.Constraint, len(cons), len(cons)+1)
		copy(out, cons)
		return append(out, system.Constraint{Coef: coef, C: c})
	}
	left := fmSolve(mk(1, floor), n, depth+1, bs) // v ≤ floor
	if left.Outcome == Dependent && left.Exact {
		return left
	}
	right := fmSolve(mk(-1, -ceil), n, depth+1, bs) // v ≥ ceil
	if right.Outcome == Dependent && right.Exact {
		return right
	}
	if left.Outcome == Maybe || right.Outcome == Maybe {
		return bs.maybe()
	}
	if left.Outcome == Independent && right.Outcome == Independent {
		return independent(KindFourierMotzkin)
	}
	return unknown(KindFourierMotzkin)
}
