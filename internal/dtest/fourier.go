package dtest

import (
	"exactdep/internal/linalg"
	"exactdep/internal/system"
)

// FM tuning knobs. The paper reports that explicit branch-and-bound was
// never required on the PERFECT Club; the limits exist to bound worst-case
// behaviour on adversarial inputs, where exceeding them yields a safe
// (inexact) "assume dependent".
const (
	maxFMConstraints = 20000
	maxBranchDepth   = 12
)

// EnableExplicitBranchAndBound controls whether Fourier–Motzkin splits on
// fractional sample ranges. The paper's implementation never branched
// explicitly — its four fractional-distance cases were instead resolved by
// the *implicit* branch-and-bound of direction-vector refinement (§6).
// Disabling this reproduces that behaviour: FM returns Unknown on a
// fractional gap and the direction machinery finishes the proof. The
// experiment harness toggles it; it is not safe to flip concurrently with
// running tests.
var EnableExplicitBranchAndBound = true

// FourierMotzkin runs the backup test (paper §3.5): rational Fourier–Motzkin
// elimination, which is exact for independence; a mid-of-range integer
// back-substitution heuristic, which is exact for dependence when it finds
// an integral sample; the paper's first-variable special case (an empty
// integer range before any choice has been made proves independence); and
// branch-and-bound on the first fractional range otherwise.
// This convenience wrapper allocates a private scratch; the pipeline calls
// fourierApply on its own.
func FourierMotzkin(s *state) Result {
	return fourierApply(s, newScratch())
}

// fourierApply is FourierMotzkin drawing every buffer — the flat constraint
// list, the derived coefficient rows, and the solver's round/bound/witness
// workspace — from sc, so the int64 elimination allocates nothing once the
// scratch is warm (TestFMSolveZeroAllocs). Only the big-integer retry and
// the rare branch-and-bound splits still allocate. The scratch's budget
// meters the work; charges accumulate across the int64 pass, the
// big-integer retry, and every branch-and-bound subproblem, so the budget
// bounds the problem's *total* spend.
func fourierApply(s *state, sc *Scratch) Result {
	if s.infeasible || s.firstConflict() >= 0 {
		// A constant constraint already refuted the system during
		// classification (state drops it from the constraint list, so the
		// verdict must be taken from the flag).
		return independent(KindFourierMotzkin)
	}
	cons := s.allConstraintsInto(sc)
	r := fmSolve(cons, s.n, 0, &sc.bud, &sc.fm, &sc.sys)
	if r.Outcome == Unknown && r.Trip == TripNone {
		// The fast path gave up — possibly from int64 overflow in the
		// coefficient growth FM is notorious for. Retry with arbitrary
		// precision; structural limits (constraint cap, branch depth) still
		// bound the work. A constraint-cap trip is not retried: the cap is a
		// count, not a precision limit, and the undeduplicated big pass can
		// only hit it sooner.
		r = fmSolveBig(toBig(cons), s.n, 0, &sc.bud)
	}
	return r
}

// unknownCap is the verdict for the structural maxFMConstraints cap: still
// Unknown ("the test cannot decide this"), but attributed through the trip
// machinery so stats and cost reports can count it.
func unknownCap() Result {
	return Result{Outcome: Unknown, Kind: KindFourierMotzkin, Trip: TripFMConstraintCap}
}

// fmEliminated records, per eliminated variable, where its lower and upper
// constraints sit in the scratch's bound store: [loStart,loEnd) are the
// lowers (coefficient of v negative), [loEnd,upEnd) the uppers. Offsets
// rather than subslices, so appending later rounds cannot invalidate them.
type fmEliminated struct {
	v                     int
	loStart, loEnd, upEnd int
}

// fmScratch is the Fourier–Motzkin solver's reusable workspace, owned by
// the cascade Scratch: the double-buffered working constraint list, the
// per-variable bound store for back-substitution, the remaining/val/chosen
// vectors, and the duplicate-detection hash set. All of it is reset by each
// fmSolve entry (including branch-and-bound subcalls, which run strictly
// after their parent stops touching the workspace), so one fmScratch serves
// the whole recursion. The dedup counters are cumulative across problems;
// Pipeline.FMMetrics exposes them.
type fmScratch struct {
	work  []system.Constraint // working list buffer A
	next  []system.Constraint // working list buffer B
	bound []system.Constraint // lowers/uppers of eliminated vars, offset-indexed
	order []fmEliminated

	remaining []bool
	val       []int64 // witness under construction (aliased by Result.Witness)
	chosen    []bool

	set consSet

	// Cumulative redundancy-elimination counters (never reset; read as
	// deltas by the stats layer). deduped counts constraints dropped because
	// an identical row with an equal-or-tighter constant was already
	// present; tightened counts duplicates that instead strengthened the
	// retained entry's constant.
	deduped   int
	tightened int
}

// dedupAdd appends c to list unless an entry with the identical coefficient
// row already subsumes it. Two constraints with equal rows denote nested
// half-spaces: the smaller constant dominates, so the weaker one is dropped
// (deduped) or the retained entry's constant is tightened in place. Exact:
// the feasible region is unchanged. Reports whether c was absorbed.
func (fs *fmScratch) dedupAdd(list []system.Constraint, c system.Constraint) ([]system.Constraint, bool) {
	fs.set.maybeGrow(list)
	h := hashRow(c.Coef)
	mask := uint64(len(fs.set.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		slot := fs.set.slots[i]
		if slot == 0 {
			fs.set.slots[i] = int32(len(list) + 1)
			fs.set.count++
			return append(list, c), false
		}
		j := int(slot) - 1
		if rowsEqual(list[j].Coef, c.Coef) {
			if c.C < list[j].C {
				list[j].C = c.C
				fs.tightened++
			} else {
				fs.deduped++
			}
			return list, true
		}
	}
}

// consSet is an open-addressed hash set of constraint-list indexes keyed by
// coefficient row, used for one working list at a time. Slots hold index+1
// (0 = empty). reset clears it for a new list; maybeGrow rehashes from the
// list when the load factor passes 1/2.
type consSet struct {
	slots []int32
	count int
}

func (cs *consSet) reset(capHint int) {
	n := 16
	for n < 2*capHint {
		n <<= 1
	}
	if cap(cs.slots) < n {
		cs.slots = make([]int32, n)
	} else {
		cs.slots = cs.slots[:n]
		for i := range cs.slots {
			cs.slots[i] = 0
		}
	}
	cs.count = 0
}

func (cs *consSet) maybeGrow(list []system.Constraint) {
	if 2*(cs.count+1) <= len(cs.slots) {
		return
	}
	n := 2 * len(cs.slots)
	if cap(cs.slots) < n {
		cs.slots = make([]int32, n)
	} else {
		cs.slots = cs.slots[:n]
		for i := range cs.slots {
			cs.slots[i] = 0
		}
	}
	cs.count = 0
	mask := uint64(n - 1)
	for j := range list {
		h := hashRow(list[j].Coef)
		for i := h & mask; ; i = (i + 1) & mask {
			if cs.slots[i] == 0 {
				cs.slots[i] = int32(j + 1)
				cs.count++
				break
			}
		}
	}
}

// hashRow hashes a coefficient row (the constant is excluded: dominance
// compares constants of equal rows).
func hashRow(coef []int64) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range coef {
		h = (h ^ uint64(v)) * 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func rowsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// fmSolve eliminates all variables, then back-substitutes a mid-range
// integer sample. Rows derived by combination come from the arena; every
// list lives in fs. Redundant derived constraints (identical rows) are
// dropped or tightened as they appear, which is what keeps deep nests under
// the maxFMConstraints cap.
func fmSolve(cons []system.Constraint, n, depth int, bs *budgetState, fs *fmScratch, arena *system.Scratch) Result {
	if bs.tripped() {
		return bs.maybe()
	}
	fs.bound = fs.bound[:0]
	fs.order = fs.order[:0]
	fs.remaining = resizeBoolsTrue(fs.remaining, n)
	numRemaining := n

	// Deduplicate the incoming list once; the per-round dedup below keeps
	// every later working list duplicate-free. Entries are struct copies, so
	// tightening never writes through to the caller's rows.
	fs.set.reset(2 * len(cons))
	work := fs.work[:0]
	for _, c := range cons {
		work, _ = fs.dedupAdd(work, c)
	}
	fs.work = work
	restIsNext := true // which buffer the next round's list draws from

	for numRemaining > 0 {
		v := pickFMVar(work, fs.remaining, n)
		if v < 0 {
			break // no remaining variable occurs in any constraint
		}
		if !bs.chargeElim() {
			return bs.maybe()
		}
		// Partition work: lowers and uppers move to the bound store (they
		// are consumed by this elimination and later by back-substitution),
		// everything else seeds the next round's list.
		loStart := len(fs.bound)
		for _, c := range work {
			if c.Coef[v] < 0 {
				fs.bound = append(fs.bound, c)
			}
		}
		loEnd := len(fs.bound)
		for _, c := range work {
			if c.Coef[v] > 0 {
				fs.bound = append(fs.bound, c)
			}
		}
		upEnd := len(fs.bound)
		var rest []system.Constraint
		if restIsNext {
			rest = fs.next[:0]
		} else {
			rest = fs.work[:0]
		}
		fs.set.reset(2 * len(work))
		for _, c := range work {
			if c.Coef[v] == 0 {
				rest, _ = fs.dedupAdd(rest, c)
			}
		}
		// combine every (lower, upper) pair, cancelling v
		lowers := fs.bound[loStart:loEnd]
		uppers := fs.bound[loEnd:upEnd]
		for li := range lowers {
			for ui := range uppers {
				m := arena.Mark()
				nc, ok, feasible, err := fmCombine(lowers[li], uppers[ui], v, arena)
				if err != nil {
					return unknown(KindFourierMotzkin)
				}
				if !feasible {
					return independent(KindFourierMotzkin)
				}
				if !ok {
					arena.Release(m) // vacuous: reclaim the row
					continue
				}
				if !bs.chargeCons() {
					return bs.maybe()
				}
				var absorbed bool
				rest, absorbed = fs.dedupAdd(rest, nc)
				if absorbed {
					arena.Release(m) // subsumed: reclaim the row
					continue
				}
				if len(rest) > maxFMConstraints {
					return unknownCap()
				}
			}
		}
		fs.order = append(fs.order, fmEliminated{v: v, loStart: loStart, loEnd: loEnd, upEnd: upEnd})
		if restIsNext {
			fs.next = rest
		} else {
			fs.work = rest
		}
		work = rest
		restIsNext = !restIsNext
		fs.remaining[v] = false
		numRemaining--
	}
	// Any leftover constraints involve no remaining variables... they were
	// constant and already filtered by fmCombine/Normalize; check residuals.
	for _, c := range work {
		if c.NumVarsUsed() == 0 && c.C < 0 {
			return independent(KindFourierMotzkin)
		}
	}

	// A real solution exists. Back-substitute in reverse elimination order,
	// choosing the middle integer of each allowed range. val is scratch-
	// backed: a Dependent result's Witness aliases it and stays valid until
	// the pipeline's next run, like every other scratch-backed buffer.
	fs.val = resizeInt64sZero(fs.val, n)
	fs.chosen = resizeBoolsFalse(fs.chosen, n)
	for k := len(fs.order) - 1; k >= 0; k-- {
		e := fs.order[k]
		pick, bracketLo, bracketHi, ok, err := fmRange(
			fs.bound[e.loStart:e.loEnd], fs.bound[e.loEnd:e.upEnd], e.v, fs.val, fs.chosen)
		if err != nil {
			return unknown(KindFourierMotzkin)
		}
		if !ok {
			// Empty rational range cannot happen (elimination proved real
			// feasibility), so ok=false means no *integer* in the range.
			if k == len(fs.order)-1 {
				// Paper's special case: no other variable has been chosen
				// yet, so the empty integer range is unconditional.
				return independent(KindFourierMotzkin)
			}
			return fmBranch(cons, n, depth, e.v, bracketLo, bracketHi, bs, fs, arena)
		}
		fs.val[e.v] = pick
		fs.chosen[e.v] = true
	}
	return dependent(KindFourierMotzkin, fs.val)
}

// pickFMVar chooses the next variable to eliminate: the one minimizing the
// product of its lower and upper constraint counts (the standard heuristic
// that minimizes fill-in).
func pickFMVar(cons []system.Constraint, remaining []bool, n int) int {
	best, bestCost := -1, 0
	for v := 0; v < n; v++ {
		if !remaining[v] {
			continue
		}
		lo, up := 0, 0
		for _, c := range cons {
			switch {
			case c.Coef[v] > 0:
				up++
			case c.Coef[v] < 0:
				lo++
			}
		}
		if lo == 0 && up == 0 {
			continue
		}
		cost := lo * up
		if best == -1 || cost < bestCost {
			best, bestCost = v, cost
		}
	}
	return best
}

// fmCombine cancels variable v between a lower constraint (coef < 0) and an
// upper constraint (coef > 0):  |b|·upper + a·lower with a = -lo.Coef[v],
// b = up.Coef[v]. The combined row comes from the arena and is normalized
// in place. It returns ok=false for a vacuous result, feasible=false for a
// constant contradiction, or the normalized combined constraint.
func fmCombine(lo, up system.Constraint, v int, arena *system.Scratch) (nc system.Constraint, ok, feasible bool, err error) {
	a := -lo.Coef[v] // > 0
	b := up.Coef[v]  // > 0
	coef := arena.Row(len(lo.Coef))
	for i := range coef {
		p1, err := linalg.MulChecked(a, up.Coef[i])
		if err != nil {
			return nc, false, true, err
		}
		p2, err := linalg.MulChecked(b, lo.Coef[i])
		if err != nil {
			return nc, false, true, err
		}
		if coef[i], err = linalg.AddChecked(p1, p2); err != nil {
			return nc, false, true, err
		}
	}
	p1, err := linalg.MulChecked(a, up.C)
	if err != nil {
		return nc, false, true, err
	}
	p2, err := linalg.MulChecked(b, lo.C)
	if err != nil {
		return nc, false, true, err
	}
	cc, err := linalg.AddChecked(p1, p2)
	if err != nil {
		return nc, false, true, err
	}
	coef[v] = 0
	norm, feasible := (system.Constraint{Coef: coef, C: cc}).NormalizeInPlace()
	if !feasible {
		return nc, false, false, nil
	}
	if norm.NumVarsUsed() == 0 {
		return nc, false, true, nil // vacuous 0 ≤ C
	}
	return norm, true, true, nil
}

// fmRange computes the allowed rational range of variable v given already-
// chosen values. On success it returns the middle integer of the range in
// pick with ok=true. With no integer in the (nonempty real) range it
// returns ok=false and the bracketing integers ⌊lo⌋ and ⌈up⌉ for
// branch-and-bound.
func fmRange(lowers, uppers []system.Constraint, v int, val []int64, chosen []bool) (pick, bracketLo, bracketHi int64, ok bool, err error) {
	var hasLo, hasUp bool
	var loR, upR linalg.Rat
	for _, c := range lowers {
		// a·v + Σ rest ≤ C with a < 0  →  v ≥ (C - Σ rest)/a
		bound, err2 := fmEval(c, v, val, chosen)
		if err2 != nil {
			return 0, 0, 0, false, err2
		}
		if !hasLo {
			loR, hasLo = bound, true
		} else if cmp, err2 := bound.Cmp(loR); err2 != nil {
			return 0, 0, 0, false, err2
		} else if cmp > 0 {
			loR = bound
		}
	}
	for _, c := range uppers {
		bound, err2 := fmEval(c, v, val, chosen)
		if err2 != nil {
			return 0, 0, 0, false, err2
		}
		if !hasUp {
			upR, hasUp = bound, true
		} else if cmp, err2 := bound.Cmp(upR); err2 != nil {
			return 0, 0, 0, false, err2
		} else if cmp < 0 {
			upR = bound
		}
	}
	switch {
	case !hasLo && !hasUp:
		return 0, 0, 0, true, nil
	case !hasLo:
		return upR.Floor(), 0, 0, true, nil
	case !hasUp:
		return loR.Ceil(), 0, 0, true, nil
	}
	cl, fu := loR.Ceil(), upR.Floor()
	if cl <= fu {
		return cl + (fu-cl)/2, 0, 0, true, nil
	}
	// no integer in [loR, upR]
	return 0, loR.Floor(), upR.Ceil(), false, nil
}

// fmEval computes the bound that constraint c imposes on variable v given
// the chosen values of later variables: (C - Σ_{j≠v} coef_j·val_j) / coef_v.
func fmEval(c system.Constraint, v int, val []int64, chosen []bool) (linalg.Rat, error) {
	num := linalg.RatInt(c.C)
	for j, a := range c.Coef {
		if j == v || a == 0 {
			continue
		}
		if !chosen[j] {
			// Unchosen variables with nonzero coefficients cannot occur:
			// elimination ordered the constraints so that every other
			// variable of c was eliminated earlier (chosen later in the
			// backward pass). Treat defensively as 0.
			continue
		}
		p, err := linalg.MulChecked(a, val[j])
		if err != nil {
			return linalg.Rat{}, err
		}
		num, err = num.Sub(linalg.RatInt(p))
		if err != nil {
			return linalg.Rat{}, err
		}
	}
	return num.Div(linalg.RatInt(c.Coef[v]))
}

// fmBranch implements the paper's branch-and-bound: when the sample range
// for v contains no integer, split the original system on v ≤ ⌊·⌋ and
// v ≥ ⌈·⌉. Both independent → independent; any exact dependent → dependent.
// A budget trip anywhere in the subtree surfaces as Maybe: one unresolved
// branch leaves the split inconclusive, so the conservative verdict is the
// only sound summary. The subcalls reuse the caller's fmScratch — by the
// time a solve branches it has stopped touching the workspace, and the two
// subproblems run strictly one after the other.
func fmBranch(cons []system.Constraint, n, depth, v int, floor, ceil int64, bs *budgetState, fs *fmScratch, arena *system.Scratch) Result {
	if !EnableExplicitBranchAndBound || depth >= maxBranchDepth {
		return unknown(KindFourierMotzkin)
	}
	if !bs.chargeNode() {
		return bs.maybe()
	}
	mk := func(coefV, c int64) []system.Constraint {
		coef := make([]int64, n)
		coef[v] = coefV
		out := make([]system.Constraint, len(cons), len(cons)+1)
		copy(out, cons)
		return append(out, system.Constraint{Coef: coef, C: c})
	}
	left := fmSolve(mk(1, floor), n, depth+1, bs, fs, arena) // v ≤ floor
	if left.Outcome == Dependent && left.Exact {
		return left
	}
	right := fmSolve(mk(-1, -ceil), n, depth+1, bs, fs, arena) // v ≥ ceil
	if right.Outcome == Dependent && right.Exact {
		return right
	}
	if left.Outcome == Maybe || right.Outcome == Maybe {
		return bs.maybe()
	}
	if left.Outcome == Independent && right.Outcome == Independent {
		return independent(KindFourierMotzkin)
	}
	return unknown(KindFourierMotzkin)
}

// resizeBoolsTrue returns s resized to n with every element true.
func resizeBoolsTrue(s []bool, n int) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = true
	}
	return s
}

// resizeBoolsFalse returns s resized to n with every element false.
func resizeBoolsFalse(s []bool, n int) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// resizeInt64sZero returns s resized to n with every element zero.
func resizeInt64sZero(s []int64, n int) []int64 {
	if cap(s) < n {
		s = make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
