package dtest

import (
	"fmt"
	"sort"
	"time"

	"exactdep/internal/system"
)

// Stage is one exact test of the cascade. A stage either decides the
// problem (decided=true with a Result) or reports itself inapplicable and
// hands the next stage the state to continue from — usually the input
// unchanged, but a stage may simplify it the way the Acyclic test does
// ("simplifies the system for the next stages", §3.3). Stages draw all
// working memory from the pipeline's Scratch and must be stateless:
// one stage value is shared by every pipeline built from a Config.
//
// Because stages operate on the package-private state representation, new
// tests register here in package dtest (implement Stage, add the value to a
// Config) rather than by editing the engine — the seam future tests (e.g.
// compile-time simplification passes) plug into.
type Stage interface {
	// Name is the stage's display name.
	Name() string
	// Kind identifies the test in results, traces, and stats counters.
	Kind() Kind
	// CostRank is the stage's position in the paper's cost ordering
	// (Table 6 / §7): 1 is cheapest. NewConfig sorts stages by it.
	CostRank() int
	// Apply probes and, when applicable, runs the test on s. decided=false
	// means inapplicable; next is then the state the following stage must
	// consume. Working memory comes from sc.
	Apply(s *state, sc *Scratch) (r Result, next *state, decided bool)
}

// Config is an immutable, cost-ordered list of cascade stages. One Config
// is shared by every Pipeline built from it (and so across workers); all
// mutable per-run memory lives in the Pipeline.
type Config struct {
	name   string
	stages []Stage
}

// NewConfig builds a configuration from the given stages, stable-sorted
// into the paper's cost order (cheapest first).
func NewConfig(name string, stages ...Stage) *Config {
	out := append([]Stage(nil), stages...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].CostRank() < out[j].CostRank() })
	return &Config{name: name, stages: out}
}

// Name returns the configuration's registered name.
func (c *Config) Name() string { return c.name }

// NumStages returns the number of stages.
func (c *Config) NumStages() int { return len(c.stages) }

// Stage returns the i-th stage in cost order.
func (c *Config) Stage(i int) Stage { return c.stages[i] }

var (
	defaultConfig = NewConfig("full", svpcStage{}, acyclicStage{}, residueStage{}, fourierStage{})
	fmOnlyConfig  = NewConfig("fm-only", fourierStage{})
)

// DefaultConfig is the paper's cascade: SVPC → Acyclic → Loop Residue →
// Fourier–Motzkin, cheapest test first (§3).
func DefaultConfig() *Config { return defaultConfig }

// FMOnlyConfig runs the Fourier–Motzkin backup alone. Every problem the
// cheap tests decide must get the same verdict from FM — the configuration
// exists for that cross-validation and for ablation benchmarks.
func FMOnlyConfig() *Config { return fmOnlyConfig }

// ConfigByName resolves a cascade configuration by its registered name.
// "" and "full" name the default cascade; "fm-only" the Fourier–Motzkin
// cross-validation pipeline.
func ConfigByName(name string) (*Config, error) {
	switch name {
	case "", "full":
		return defaultConfig, nil
	case "fm-only":
		return fmOnlyConfig, nil
	}
	return nil, fmt.Errorf("dtest: unknown cascade configuration %q (want \"full\" or \"fm-only\")", name)
}

// StageMetrics is the Table 6 cost accounting of one stage: how many
// problems consulted it (applicability probes), how many it decided, and —
// when timing is enabled — the cumulative wall time spent in it.
type StageMetrics struct {
	Consulted int
	Decided   int
	Time      time.Duration
}

// Pipeline runs a Config's stages over problems, reusing one Scratch across
// problems and accumulating per-stage metrics. It is the single cascade
// engine: Solve and SolveState are thin wrappers over throwaway pipelines,
// and the analyzer gives each worker a persistent one.
//
// A Pipeline is not safe for concurrent use. Results and traces returned by
// Run/RunTraced alias the pipeline's scratch buffers and are valid only
// until the next Run/RunTraced on the same pipeline; callers that keep a
// witness or trace across problems must copy it.
type Pipeline struct {
	cfg     *Config
	sc      *Scratch
	timed   bool
	metrics []StageMetrics
}

// NewPipeline builds a pipeline (with its own Scratch) over this config.
func (c *Config) NewPipeline() *Pipeline {
	return &Pipeline{cfg: c, sc: newScratch(), metrics: make([]StageMetrics, len(c.stages))}
}

// Config returns the shared stage configuration.
func (p *Pipeline) Config() *Config { return p.cfg }

// SetTimed toggles per-stage wall-time accounting. Off by default: the two
// clock reads per consulted stage are measurable next to a sub-microsecond
// SVPC probe, so timing is opt-in for cost reports.
func (p *Pipeline) SetTimed(on bool) { p.timed = on }

// SetBudget installs a per-problem resource budget, carried in the
// pipeline's Scratch and consulted at the Fourier–Motzkin / branch-and-bound
// hot points. The zero Budget (the default) is unlimited. When a limit fires
// the cascade returns a sound Maybe verdict with Result.Trip set.
func (p *Pipeline) SetBudget(b Budget) { p.sc.bud.limits = b }

// Budget returns the installed budget.
func (p *Pipeline) Budget() Budget { return p.sc.bud.limits }

// SetCancel installs a cancellation signal (typically ctx.Done()) polled at
// the same hot points as the budget; a closed channel trips the current
// problem with TripCancelled. nil (the default) disables the poll.
func (p *Pipeline) SetCancel(c <-chan struct{}) { p.sc.bud.cancel = c }

// StageMetrics returns the accumulated metrics of the i-th stage (in the
// config's cost order).
func (p *Pipeline) StageMetrics(i int) StageMetrics { return p.metrics[i] }

// FMMetrics is the Fourier–Motzkin redundancy-elimination accounting,
// cumulative over every problem the pipeline has run: how many derived
// constraints were dropped as duplicates of an equal-or-tighter entry, and
// how many duplicates instead tightened the retained entry's constant.
type FMMetrics struct {
	Deduped   int
	Tightened int
}

// FMMetrics returns the pipeline's cumulative FM redundancy counters.
func (p *Pipeline) FMMetrics() FMMetrics {
	return FMMetrics{Deduped: p.sc.fm.deduped, Tightened: p.sc.fm.tightened}
}

// Run solves one preprocessed t-space system, without trace collection —
// the hot path: a problem the cheap tests decide allocates nothing once the
// scratch is warm.
func (p *Pipeline) Run(ts *system.TSystem) Result {
	r, _ := p.run(p.sc.prepare(ts), false)
	return r
}

// RunTraced is Run also reporting the applicability path. The trace's
// Consulted slice is scratch-backed: valid until the next Run/RunTraced.
func (p *Pipeline) RunTraced(ts *system.TSystem) (Result, Trace) {
	return p.run(p.sc.prepare(ts), true)
}

// run drives the cascade over a prepared state. If no stage decides (which
// cannot happen in a configuration ending in Fourier–Motzkin) the verdict
// is an inexact Unknown with KindNone.
func (p *Pipeline) run(s *state, trace bool) (Result, Trace) {
	var tr Trace
	consulted := p.sc.consulted[:0]
	for i, st := range p.cfg.stages {
		m := &p.metrics[i]
		m.Consulted++
		if trace {
			consulted = append(consulted, st.Kind())
		}
		var start time.Time
		if p.timed {
			start = time.Now()
		}
		r, next, decided := st.Apply(s, p.sc)
		if p.timed {
			m.Time += time.Since(start)
		}
		if decided {
			m.Decided++
			p.sc.consulted = consulted
			if trace {
				tr.Consulted = consulted
				tr.Decided = st.Kind()
			}
			return r, tr
		}
		s = next
	}
	p.sc.consulted = consulted
	if trace {
		tr.Consulted = consulted
	}
	return unknown(KindNone), tr
}

// svpcStage wraps the Single Variable Per Constraint test (§3.2).
type svpcStage struct{}

func (svpcStage) Name() string  { return KindSVPC.String() }
func (svpcStage) Kind() Kind    { return KindSVPC }
func (svpcStage) CostRank() int { return KindSVPC.CostRank() }
func (svpcStage) Apply(s *state, sc *Scratch) (Result, *state, bool) {
	r, ok, w := svpc(s, sc.witness)
	sc.witness = w
	return r, s, ok
}

// acyclicStage wraps the Acyclic test (§3.3). When inapplicable it passes
// its partially simplified state on to the later stages.
type acyclicStage struct{}

func (acyclicStage) Name() string  { return KindAcyclic.String() }
func (acyclicStage) Kind() Kind    { return KindAcyclic }
func (acyclicStage) CostRank() int { return KindAcyclic.CostRank() }
func (acyclicStage) Apply(s *state, sc *Scratch) (Result, *state, bool) {
	r, simplified, decided := acyclicApply(s, sc)
	if decided {
		return r, nil, true
	}
	return Result{}, simplified, false
}

// residueStage wraps the Loop Residue test (§3.4).
type residueStage struct{}

func (residueStage) Name() string  { return KindLoopResidue.String() }
func (residueStage) Kind() Kind    { return KindLoopResidue }
func (residueStage) CostRank() int { return KindLoopResidue.CostRank() }
func (residueStage) Apply(s *state, sc *Scratch) (Result, *state, bool) {
	r, ok := residueApply(s, sc)
	return r, s, ok
}

// fourierStage wraps the Fourier–Motzkin backup (§3.5). It always decides
// (possibly with an inexact Unknown).
type fourierStage struct{}

func (fourierStage) Name() string  { return KindFourierMotzkin.String() }
func (fourierStage) Kind() Kind    { return KindFourierMotzkin }
func (fourierStage) CostRank() int { return KindFourierMotzkin.CostRank() }
func (fourierStage) Apply(s *state, sc *Scratch) (Result, *state, bool) {
	return fourierApply(s, sc), nil, true
}
