package dtest

import (
	"exactdep/internal/system"
)

// Trace records which tests the cascade consulted for one problem, in order.
// Only the last entry decided; earlier entries were applicability probes
// (the paper's "we only need to check the applicability of multiple tests —
// we never have to apply more than one").
type Trace struct {
	Consulted []Kind
	Decided   Kind
}

// Solve runs the exact-test cascade of paper §3 on a preprocessed t-space
// system, cheapest test first. The returned Result carries the verdict, the
// deciding test, and (for exact verdicts) a witness where available. The
// Trace reports the applicability path.
func Solve(ts *system.TSystem) (Result, Trace) {
	var tr Trace
	s := newState(ts)

	// An infeasible constant constraint (caught during normalization) is an
	// immediate exact independence; the bounds check owns that verdict.
	tr.Consulted = append(tr.Consulted, KindSVPC)
	if r, ok := SVPC(s); ok {
		tr.Decided = KindSVPC
		return r, tr
	}

	tr.Consulted = append(tr.Consulted, KindAcyclic)
	r, simplified, decided := Acyclic(s)
	if decided {
		tr.Decided = KindAcyclic
		return r, tr
	}

	tr.Consulted = append(tr.Consulted, KindLoopResidue)
	if r, ok := LoopResidue(simplified); ok {
		tr.Decided = KindLoopResidue
		return r, tr
	}

	tr.Consulted = append(tr.Consulted, KindFourierMotzkin)
	tr.Decided = KindFourierMotzkin
	return FourierMotzkin(simplified), tr
}

// SolveState is Solve for callers that already built a state (testing and
// benchmarking individual stages).
func SolveState(s *state) Result {
	if r, ok := SVPC(s); ok {
		return r
	}
	r, simplified, decided := Acyclic(s)
	if decided {
		return r
	}
	if r, ok := LoopResidue(simplified); ok {
		return r
	}
	return FourierMotzkin(simplified)
}

// NewState exposes state construction to sibling packages' tests and to the
// benchmark harness through exported helpers in this package.
func NewState(ts *system.TSystem) *state { return newState(ts) }

// VerifyWitness checks a witness assignment against every constraint of ts,
// returning false on the first violated constraint. Used by property tests:
// any exact Dependent verdict must come with either no witness or a valid
// one.
func VerifyWitness(ts *system.TSystem, w []int64) bool {
	if ts.Infeasible {
		return false
	}
	for _, c := range ts.Cons {
		var sum int64
		for i, a := range c.Coef {
			sum += a * w[i]
		}
		if sum > c.C {
			return false
		}
	}
	return true
}
