package dtest

import (
	"exactdep/internal/system"
)

// Trace records which tests the cascade consulted for one problem, in order.
// Only the last entry decided; earlier entries were applicability probes
// (the paper's "we only need to check the applicability of multiple tests —
// we never have to apply more than one").
type Trace struct {
	Consulted []Kind
	Decided   Kind
}

// Solve runs the exact-test cascade of paper §3 on a preprocessed t-space
// system, cheapest test first. The returned Result carries the verdict, the
// deciding test, and (for exact verdicts) a witness where available. The
// Trace reports the applicability path.
//
// Solve is a convenience wrapper over a throwaway default Pipeline; callers
// solving many problems should hold a Pipeline and use Run/RunTraced, which
// reuse one Scratch across problems and keep per-stage cost metrics.
func Solve(ts *system.TSystem) (Result, Trace) {
	return DefaultConfig().NewPipeline().RunTraced(ts)
}

// SolveState is Solve for callers that already built a state (testing and
// benchmarking individual stages), without trace collection.
func SolveState(s *state) Result {
	p := DefaultConfig().NewPipeline()
	r, _ := p.run(s, false)
	return r
}

// NewState exposes state construction to sibling packages' tests and to the
// benchmark harness through exported helpers in this package.
func NewState(ts *system.TSystem) *state { return newState(ts) }

// VerifyWitness checks a witness assignment against every constraint of ts,
// returning false on the first violated constraint. Used by property tests:
// any exact Dependent verdict must come with either no witness or a valid
// one.
func VerifyWitness(ts *system.TSystem, w []int64) bool {
	if ts.Infeasible {
		return false
	}
	for _, c := range ts.Cons {
		var sum int64
		for i, a := range c.Coef {
			sum += a * w[i]
		}
		if sum > c.C {
			return false
		}
	}
	return true
}
