package dtest

import "time"

// Budget bounds the work one problem may spend in the expensive end of the
// cascade. The cheap tests (SVPC, Acyclic, Loop Residue) are polynomial and
// never consult the budget; only the Fourier–Motzkin backup — worst-case
// exponential in its elimination/branch-and-bound phase — is metered. When a
// limit fires the stage returns a sound, conservative Maybe verdict ("assume
// dependent", Exact=false) with Result.Trip naming the limit, so a service
// under adversarial input degrades gracefully instead of stalling a worker.
//
// The zero value is unlimited (no field is checked). Count limits
// (eliminations, branch nodes, derived constraints) are deterministic:
// whether they trip depends only on the canonical problem, so tripped
// verdicts are reproducible across schedules and cacheable per budget class
// (Class). Clock limits (MaxDuration, Deadline) and cancellation are
// scheduling-dependent; verdicts they produce are sound but not
// deterministic, and are never memoized.
type Budget struct {
	// MaxFMEliminations caps the number of Fourier–Motzkin variable
	// eliminations per problem, summed over the int64 pass, the big-integer
	// retry, and every branch-and-bound subproblem. 0 means unlimited.
	MaxFMEliminations int
	// MaxBranchNodes caps the branch-and-bound nodes explored per problem.
	// 0 means unlimited (the structural depth cap still applies).
	MaxBranchNodes int
	// MaxConstraints caps the derived constraints accumulated per problem
	// across all eliminations. 0 means unlimited (the structural
	// maxFMConstraints cap still applies and yields Unknown, not Maybe).
	MaxConstraints int
	// MaxDuration is the per-problem wall-clock allowance, armed when the
	// scratch is prepared for the problem. 0 means unlimited.
	MaxDuration time.Duration
	// Deadline is an absolute wall-clock cutoff shared by every problem
	// (typically derived from a context deadline). Zero means none.
	Deadline time.Time
}

// Limited reports whether any budget dimension is set.
func (b Budget) Limited() bool {
	return b.MaxFMEliminations > 0 || b.MaxBranchNodes > 0 || b.MaxConstraints > 0 ||
		b.MaxDuration > 0 || !b.Deadline.IsZero()
}

// BudgetClass identifies the deterministic (count-limit) part of a Budget.
// A degraded Maybe verdict is a property of the problem *and* the count
// limits that tripped it, so the memo layer caches such verdicts only for
// an identical class; exact verdicts are valid under every class. Clock
// limits are excluded: whether they trip is scheduling-dependent, and
// clock-tripped verdicts are never cached at all.
type BudgetClass struct {
	FMEliminations, BranchNodes, Constraints int
}

// Class returns the budget's deterministic fingerprint.
func (b Budget) Class() BudgetClass {
	return BudgetClass{
		FMEliminations: b.MaxFMEliminations,
		BranchNodes:    b.MaxBranchNodes,
		Constraints:    b.MaxConstraints,
	}
}

// Exhaustive reports whether the class imposes no count limit (the class of
// an unbudgeted or clock-only budget).
func (c BudgetClass) Exhaustive() bool {
	return c.FMEliminations == 0 && c.BranchNodes == 0 && c.Constraints == 0
}

// TripReason records which budget limit cut an analysis short.
type TripReason int

const (
	// TripNone: the verdict was reached within budget.
	TripNone TripReason = iota
	// TripFMEliminations: Budget.MaxFMEliminations fired.
	TripFMEliminations
	// TripBranchNodes: Budget.MaxBranchNodes fired.
	TripBranchNodes
	// TripConstraints: Budget.MaxConstraints fired.
	TripConstraints
	// TripDeadline: the per-problem duration or absolute deadline passed.
	TripDeadline
	// TripCancelled: the caller's context was cancelled mid-problem.
	TripCancelled
	// TripFMConstraintCap: the structural maxFMConstraints cap on one
	// elimination round fired. Unlike the budgetary reasons above this is not
	// a Budget limit: it is a property of the problem alone, always armed,
	// and the verdict stays Unknown (not Maybe). It is recorded so the stats
	// and cost reports can attribute the degradation.
	TripFMConstraintCap

	// NumTripReasons sizes per-reason counter arrays (stats.Counters).
	NumTripReasons = int(TripFMConstraintCap) + 1
)

func (t TripReason) String() string {
	switch t {
	case TripNone:
		return "none"
	case TripFMEliminations:
		return "fm-eliminations"
	case TripBranchNodes:
		return "branch-nodes"
	case TripConstraints:
		return "constraints"
	case TripDeadline:
		return "deadline"
	case TripCancelled:
		return "cancelled"
	case TripFMConstraintCap:
		return "fm-constraint-cap"
	default:
		return "?"
	}
}

// Budgetary reports whether the reason names a Budget limit (or the clock /
// cancellation), as opposed to a structural cap of a test itself. Budgetary
// trips degrade the verdict to Maybe ("ran out of budget, re-run with
// more"); structural trips leave it Unknown ("the test cannot decide this
// problem"), matching the pre-budget behaviour of maxFMConstraints.
func (t TripReason) Budgetary() bool {
	switch t {
	case TripFMEliminations, TripBranchNodes, TripConstraints, TripDeadline, TripCancelled:
		return true
	}
	return false
}

// clockCheckStride decimates wall-clock and cancellation checks on the
// constraint-derivation fast path: reading the clock per derived constraint
// would dominate the arithmetic it meters. Eliminations and branch nodes are
// chunky enough to check every time.
const clockCheckStride = 64

// budgetState is the per-problem metering carried in the Scratch: the
// immutable limits plus the running counters, the armed deadline, and the
// first limit that fired. It is reset by Scratch.prepare and consulted only
// from the Fourier–Motzkin hot points, so problems decided by the cheap
// tests pay nothing (and the budgeted cascade path stays allocation-free —
// TestBudgetZeroAllocs).
type budgetState struct {
	limits Budget
	cancel <-chan struct{}

	deadline time.Time // per-problem cutoff, computed at reset
	hasClock bool      // deadline is armed for this problem

	elims int
	nodes int
	cons  int
	tick  uint
	trip  TripReason
}

// reset re-arms the state for a new problem. The clock is read only when a
// clock limit is actually set.
func (bs *budgetState) reset() {
	bs.elims, bs.nodes, bs.cons, bs.tick = 0, 0, 0, 0
	bs.trip = TripNone
	bs.hasClock = false
	if bs.limits.MaxDuration > 0 || !bs.limits.Deadline.IsZero() {
		bs.deadline = bs.limits.Deadline
		if bs.limits.MaxDuration > 0 {
			d := time.Now().Add(bs.limits.MaxDuration)
			if bs.deadline.IsZero() || d.Before(bs.deadline) {
				bs.deadline = d
			}
		}
		bs.hasClock = true
	}
}

func (bs *budgetState) tripped() bool { return bs.trip != TripNone }

// maybe is the degraded verdict for the recorded trip.
func (bs *budgetState) maybe() Result {
	return Result{Outcome: Maybe, Kind: KindFourierMotzkin, Trip: bs.trip}
}

// checkClock polls cancellation and the armed deadline; false means the
// problem must stop (bs.trip is set).
func (bs *budgetState) checkClock() bool {
	if bs.cancel != nil {
		select {
		case <-bs.cancel:
			bs.trip = TripCancelled
			return false
		default:
		}
	}
	if bs.hasClock && time.Now().After(bs.deadline) {
		bs.trip = TripDeadline
		return false
	}
	return true
}

// chargeElim meters one variable elimination; false means over budget.
func (bs *budgetState) chargeElim() bool {
	if bs.trip != TripNone {
		return false
	}
	bs.elims++
	if bs.limits.MaxFMEliminations > 0 && bs.elims > bs.limits.MaxFMEliminations {
		bs.trip = TripFMEliminations
		return false
	}
	if bs.cancel == nil && !bs.hasClock {
		return true
	}
	return bs.checkClock()
}

// chargeNode meters one branch-and-bound node; false means over budget.
func (bs *budgetState) chargeNode() bool {
	if bs.trip != TripNone {
		return false
	}
	bs.nodes++
	if bs.limits.MaxBranchNodes > 0 && bs.nodes > bs.limits.MaxBranchNodes {
		bs.trip = TripBranchNodes
		return false
	}
	if bs.cancel == nil && !bs.hasClock {
		return true
	}
	return bs.checkClock()
}

// chargeCons meters one derived constraint; the clock is polled every
// clockCheckStride charges. false means over budget.
func (bs *budgetState) chargeCons() bool {
	if bs.trip != TripNone {
		return false
	}
	bs.cons++
	if bs.limits.MaxConstraints > 0 && bs.cons > bs.limits.MaxConstraints {
		bs.trip = TripConstraints
		return false
	}
	if bs.cancel == nil && !bs.hasClock {
		return true
	}
	bs.tick++
	if bs.tick%clockCheckStride != 0 {
		return true
	}
	return bs.checkClock()
}
