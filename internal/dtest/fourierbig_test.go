package dtest

import (
	"math"
	"math/rand"
	"testing"

	"exactdep/internal/system"
)

func TestBigFMExactOnOverflowingSystem(t *testing.T) {
	// Engineered so the int64 combination overflows but the verdict is
	// clear: big·t1 + (big-1)·t2 ≤ 1 and ≥ 3 simultaneously → independent
	// over the reals, which only the big path can certify.
	big := int64(math.MaxInt64 / 2)
	ts := sys(2,
		cons(1, big, big-1),
		cons(-3, -(big-3), -(big-5)),
		cons(10, 1, 0), cons(0, -1, 0),
		cons(10, 0, 1), cons(0, 0, -1),
	)
	r := FourierMotzkin(NewState(ts))
	if r.Outcome == Unknown {
		t.Fatalf("big fallback should decide: %v", r)
	}
	if !r.Exact {
		t.Fatalf("verdict must be exact: %v", r)
	}
}

func TestBigFMDependentWitness(t *testing.T) {
	// Large but satisfiable: big·t1 - big·t2 ≤ 0 etc., with box bounds.
	b := int64(math.MaxInt64 / 4)
	ts := sys(2,
		cons(0, b, b-1),
		cons(0, -b, -(b-1)),
		cons(5, 1, 0), cons(5, -1, 0),
		cons(5, 0, 1), cons(5, 0, -1),
	)
	r := FourierMotzkin(NewState(ts))
	if r.Outcome != Dependent || !r.Exact {
		t.Fatalf("got %v", r)
	}
	if r.Witness != nil && !VerifyWitness(ts, r.Witness) {
		t.Fatalf("invalid witness %v", r.Witness)
	}
}

// TestBigFMAgreesWithFastPath cross-validates the two implementations on
// random small systems where both complete.
func TestBigFMAgreesWithFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 800; iter++ {
		n := 1 + rng.Intn(3)
		var cs []system.Constraint
		for i := 0; i < n; i++ {
			lo := make([]int64, n)
			hi := make([]int64, n)
			lo[i], hi[i] = -1, 1
			cs = append(cs,
				system.Constraint{Coef: hi, C: int64(rng.Intn(6))},
				system.Constraint{Coef: lo, C: int64(rng.Intn(6))})
		}
		for k := rng.Intn(4); k > 0; k-- {
			coef := make([]int64, n)
			for j := range coef {
				coef[j] = int64(rng.Intn(9) - 4)
			}
			cs = append(cs, system.Constraint{Coef: coef, C: int64(rng.Intn(11) - 5)})
		}
		fastScratch := newScratch()
		fast := fmSolve(NewState(sys(n, cs...)).allConstraintsInto(fastScratch), n, 0, &budgetState{}, &fastScratch.fm, &fastScratch.sys)
		slow := fmSolveBig(toBig(NewState(sys(n, cs...)).allConstraintsInto(newScratch())), n, 0, &budgetState{})
		if fast.Outcome == Unknown || slow.Outcome == Unknown {
			continue
		}
		if fast.Outcome != slow.Outcome {
			t.Fatalf("iter %d: fast %v vs big %v on\n%v", iter, fast.Outcome, slow.Outcome, cs)
		}
	}
}

func TestBigFMParityInfeasible(t *testing.T) {
	// 2t1 + 4t2 = 1 scaled by huge factors: still independent (parity),
	// and only detectable after normalization in the big path.
	b := int64(1) << 40
	ts := sys(2,
		cons(b, 2*b, 4*b),
		cons(-b, -2*b, -4*b),
	)
	// normalization tightens: 2b·t1+4b·t2 ≤ b → t1+2t2 ≤ 0 (floor b/2b);
	// ≥ side: t1+2t2 ≥ 1 → contradiction.
	r := FourierMotzkin(NewState(ts))
	if r.Outcome != Independent || !r.Exact {
		t.Fatalf("got %v", r)
	}
}
