package dtest

import (
	"math/rand"
	"testing"

	"exactdep/internal/system"
)

// Cross-validation: on inputs where a cheap test applies, its verdict must
// agree with Fourier–Motzkin (which is exact whenever it answers without
// hitting its caps), and both must agree with brute force on small boxes.

func randBoxed(rng *rand.Rand, n int, box int64) []system.Constraint {
	var cs []system.Constraint
	for i := 0; i < n; i++ {
		lo := make([]int64, n)
		hi := make([]int64, n)
		lo[i], hi[i] = -1, 1
		cs = append(cs,
			system.Constraint{Coef: hi, C: box},
			system.Constraint{Coef: lo, C: box})
	}
	return cs
}

func TestSVPCAgreesWithFM(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 1000; iter++ {
		n := 1 + rng.Intn(3)
		cs := randBoxed(rng, n, int64(rng.Intn(6)))
		// extra single-variable constraints
		for k := rng.Intn(4); k > 0; k-- {
			coef := make([]int64, n)
			coef[rng.Intn(n)] = int64(rng.Intn(7) - 3)
			cs = append(cs, system.Constraint{Coef: coef, C: int64(rng.Intn(9) - 4)})
		}
		ts := sys(n, cs...)
		svpcRes, ok := SVPC(NewState(ts))
		if !ok {
			// a zero-coefficient extra constraint may have been dropped or
			// normalized; SVPC must apply to single-var systems
			t.Fatalf("iter %d: SVPC must apply", iter)
		}
		fmRes := FourierMotzkin(NewState(ts))
		if fmRes.Outcome == Unknown {
			continue
		}
		if svpcRes.Outcome != fmRes.Outcome {
			t.Fatalf("iter %d: SVPC %v vs FM %v on\n%v", iter, svpcRes.Outcome, fmRes.Outcome, cs)
		}
	}
}

func TestLoopResidueAgreesWithFM(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 1000; iter++ {
		n := 2 + rng.Intn(3)
		cs := randBoxed(rng, n, int64(rng.Intn(5)))
		// difference constraints t_i - t_j ≤ c
		for k := 1 + rng.Intn(5); k > 0; k-- {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			coef := make([]int64, n)
			coef[i], coef[j] = 1, -1
			cs = append(cs, system.Constraint{Coef: coef, C: int64(rng.Intn(7) - 3)})
		}
		ts := sys(n, cs...)
		lrRes, ok := LoopResidue(NewState(ts))
		if !ok {
			t.Fatalf("iter %d: residue must apply to difference systems", iter)
		}
		fmRes := FourierMotzkin(NewState(ts))
		if fmRes.Outcome == Unknown {
			continue
		}
		if lrRes.Outcome != fmRes.Outcome {
			t.Fatalf("iter %d: LoopResidue %v vs FM %v on\n%v", iter, lrRes.Outcome, fmRes.Outcome, cs)
		}
		if lrRes.Outcome == Dependent && !VerifyWitness(ts, lrRes.Witness) {
			t.Fatalf("iter %d: residue witness invalid: %v", iter, lrRes.Witness)
		}
	}
}

func TestAcyclicAgreesWithFM(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	decided := 0
	for iter := 0; iter < 1500; iter++ {
		n := 2 + rng.Intn(3)
		cs := randBoxed(rng, n, int64(rng.Intn(5)))
		// one-sided couplings: t_i ≤ t_j + t_k + c shapes (positive coeff on
		// one var only) tend to stay acyclic
		for k := 1 + rng.Intn(3); k > 0; k-- {
			coef := make([]int64, n)
			i := rng.Intn(n)
			coef[i] = 1 + int64(rng.Intn(2))
			for j := 0; j < n; j++ {
				if j != i && rng.Intn(2) == 0 {
					coef[j] = -(1 + int64(rng.Intn(2)))
				}
			}
			cs = append(cs, system.Constraint{Coef: coef, C: int64(rng.Intn(9) - 2)})
		}
		ts := sys(n, cs...)
		acRes, _, ok := Acyclic(NewState(ts))
		if !ok {
			continue // cyclic: not applicable, nothing to validate
		}
		decided++
		fmRes := FourierMotzkin(NewState(ts))
		if fmRes.Outcome == Unknown {
			continue
		}
		if acRes.Outcome != fmRes.Outcome {
			t.Fatalf("iter %d: Acyclic %v vs FM %v on\n%v", iter, acRes.Outcome, fmRes.Outcome, cs)
		}
		if acRes.Outcome == Dependent && acRes.Witness != nil && !VerifyWitness(ts, acRes.Witness) {
			t.Fatalf("iter %d: acyclic witness invalid: %v", iter, acRes.Witness)
		}
	}
	if decided < 100 {
		t.Fatalf("too few acyclic-decidable samples (%d) — generator drifted", decided)
	}
}

// TestCascadeAgreesWithFMOnly cross-validates the two registered pipeline
// configurations: any verdict the cost-ordered cascade reaches must also be
// reached by Fourier–Motzkin running alone (FM is exact whenever it answers
// without hitting its caps), on a stream of mixed-shape random systems.
func TestCascadeAgreesWithFMOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	full := DefaultConfig().NewPipeline()
	fm := FMOnlyConfig().NewPipeline()
	agreed := 0
	for iter := 0; iter < 3000; iter++ {
		n := 1 + rng.Intn(4)
		cs := randBoxed(rng, n, int64(rng.Intn(6)))
		for k := rng.Intn(5); k > 0; k-- {
			coef := make([]int64, n)
			for j := range coef {
				coef[j] = int64(rng.Intn(5) - 2)
			}
			cs = append(cs, system.Constraint{Coef: coef, C: int64(rng.Intn(11) - 5)})
		}
		ts := sys(n, cs...)
		r := full.Run(ts)
		if r.Outcome == Unknown {
			continue
		}
		fr := fm.Run(ts)
		if fr.Outcome == Unknown { // FM hit its size caps
			continue
		}
		if r.Outcome != fr.Outcome {
			t.Fatalf("iter %d: cascade (%v) %v vs fm-only %v on\n%v", iter, r.Kind, r.Outcome, fr.Outcome, cs)
		}
		agreed++
	}
	if agreed < 1000 {
		t.Fatalf("only %d comparable samples — generator drifted", agreed)
	}
}

// TestFMAgreesWithBruteForce closes the loop: FM itself against
// enumeration on tightly boxed systems.
func TestFMAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 800; iter++ {
		n := 1 + rng.Intn(3)
		const box = 3
		cs := randBoxed(rng, n, box)
		for k := rng.Intn(4); k > 0; k-- {
			coef := make([]int64, n)
			for j := range coef {
				coef[j] = int64(rng.Intn(9) - 4)
			}
			cs = append(cs, system.Constraint{Coef: coef, C: int64(rng.Intn(11) - 5)})
		}
		ts := sys(n, cs...)
		r := FourierMotzkin(NewState(ts))
		if r.Outcome == Unknown {
			continue
		}
		want := bruteForce(cs, n, box)
		if (r.Outcome == Dependent) != want {
			t.Fatalf("iter %d: FM %v, brute force %v on\n%v", iter, r.Outcome, want, cs)
		}
	}
}
