package dtest

import (
	"fmt"
	"strings"
)

// The paper's explicit graph construction for the Acyclic test (§3.3): two
// nodes per variable (+i and -i), and for every pair of variables in a
// multi-variable constraint, edges recording "this variable is bounded by
// that one" in the appropriate directions. An acyclic graph guarantees the
// substitution method of the Acyclic test eliminates every variable; the
// implementation itself uses the paper's equivalent simple search ("one can
// instead simply search for variables which are only constrained in one
// direction"), which succeeds on every acyclic graph and sometimes on
// cyclic ones too (fixed variables simplify the rest). This graph is kept
// for introspection and for the cross-validation tests of that implication.

// AcyclicNode identifies a signed variable node: Var with Pos=true is the
// +t_i node, Pos=false the -t_i node.
type AcyclicNode struct {
	Var int
	Pos bool
}

func (n AcyclicNode) String() string {
	if n.Pos {
		return fmt.Sprintf("t%d", n.Var+1)
	}
	return fmt.Sprintf("-t%d", n.Var+1)
}

// AcyclicEdge is a directed edge of the constraint graph.
type AcyclicEdge struct {
	From, To AcyclicNode
}

// AcyclicGraph is the §3.3 constraint graph.
type AcyclicGraph struct {
	NumVars int
	Edges   []AcyclicEdge
}

// BuildAcyclicGraph constructs the graph from the state's multi-variable
// constraints. For a constraint Σ a_k·t_k ≤ c and a pair (i, j) with
// nonzero coefficients: rewriting as a_i·t_i ≤ … − a_j·t_j bounds t_i by
// t_j. The source node is +i when a_i > 0 (t_i bounded above) and -i when
// a_i < 0; the target node is +j when the right-hand coefficient −a_j is
// positive, i.e. a_j < 0… following the paper: both positive → i→j;
// negative a_i uses node -i, negative a_j uses node -j for the target.
func BuildAcyclicGraph(s *state) *AcyclicGraph {
	g := &AcyclicGraph{NumVars: s.n}
	for _, c := range s.multi {
		var vars []int
		for i, a := range c.Coef {
			if a != 0 {
				vars = append(vars, i)
			}
		}
		for _, i := range vars {
			for _, j := range vars {
				if i == j {
					continue
				}
				// expressing the constraint as a bound on t_i in terms of
				// t_j (among others)
				from := AcyclicNode{Var: i, Pos: c.Coef[i] > 0}
				to := AcyclicNode{Var: j, Pos: c.Coef[j] < 0}
				g.Edges = append(g.Edges, AcyclicEdge{From: from, To: to})
			}
		}
	}
	return g
}

// nodeID maps a node to a dense index.
func (g *AcyclicGraph) nodeID(n AcyclicNode) int {
	if n.Pos {
		return n.Var
	}
	return g.NumVars + n.Var
}

// HasCycle reports whether the graph contains a directed cycle.
func (g *AcyclicGraph) HasCycle() bool {
	adj := make([][]int, 2*g.NumVars)
	for _, e := range g.Edges {
		u, v := g.nodeID(e.From), g.nodeID(e.To)
		adj[u] = append(adj[u], v)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, 2*g.NumVars)
	var visit func(u int) bool
	visit = func(u int) bool {
		color[u] = gray
		for _, v := range adj[u] {
			switch color[v] {
			case gray:
				return true
			case white:
				if visit(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for u := range color {
		if color[u] == white && visit(u) {
			return true
		}
	}
	return false
}

// Dot renders the graph in Graphviz syntax.
func (g *AcyclicGraph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph acyclic {\n")
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  %q -> %q;\n", e.From.String(), e.To.String())
	}
	b.WriteString("}\n")
	return b.String()
}
