package dtest

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"exactdep/internal/system"
)

// TestConfigCostOrder: NewConfig sorts stages into the paper's cost order
// regardless of registration order, stably.
func TestConfigCostOrder(t *testing.T) {
	cfg := NewConfig("scrambled", fourierStage{}, residueStage{}, svpcStage{}, acyclicStage{})
	want := []Kind{KindSVPC, KindAcyclic, KindLoopResidue, KindFourierMotzkin}
	if cfg.NumStages() != len(want) {
		t.Fatalf("%d stages, want %d", cfg.NumStages(), len(want))
	}
	for i, k := range want {
		st := cfg.Stage(i)
		if st.Kind() != k {
			t.Errorf("stage %d is %v, want %v", i, st.Kind(), k)
		}
		if st.CostRank() != i+1 {
			t.Errorf("stage %d has cost rank %d, want %d", i, st.CostRank(), i+1)
		}
	}
	if cfg.Name() != "scrambled" {
		t.Errorf("Name = %q", cfg.Name())
	}
	def := DefaultConfig()
	for i, k := range want {
		if def.Stage(i).Kind() != k {
			t.Fatalf("default config stage %d is %v, want %v", i, def.Stage(i).Kind(), k)
		}
	}
	fm := FMOnlyConfig()
	if fm.NumStages() != 1 || fm.Stage(0).Kind() != KindFourierMotzkin {
		t.Fatalf("fm-only config has unexpected stages")
	}
}

// TestConfigByName covers the registered names and the error path.
func TestConfigByName(t *testing.T) {
	for _, name := range []string{"", "full"} {
		cfg, err := ConfigByName(name)
		if err != nil || cfg != DefaultConfig() {
			t.Fatalf("ConfigByName(%q) = %v, %v; want the default config", name, cfg, err)
		}
	}
	cfg, err := ConfigByName("fm-only")
	if err != nil || cfg != FMOnlyConfig() {
		t.Fatalf("ConfigByName(fm-only) = %v, %v", cfg, err)
	}
	if _, err := ConfigByName("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("ConfigByName(bogus) error = %v, want one naming the bad configuration", err)
	}
}

// TestPipelineMetrics checks the Table 6 accounting: every problem consults
// the stages up to and including the one that decides it, and nothing after.
func TestPipelineMetrics(t *testing.T) {
	p := DefaultConfig().NewPipeline()
	runs := []struct {
		ts   *system.TSystem
		n    int
		kind Kind
	}{
		{svpcSys(), 3, KindSVPC},
		{acyclicSys(), 2, KindAcyclic},
		{residueSys(), 1, KindLoopResidue},
		{fmSys(), 1, KindFourierMotzkin},
	}
	for _, r := range runs {
		for i := 0; i < r.n; i++ {
			if got := p.Run(r.ts); got.Kind != r.kind {
				t.Fatalf("decided by %v, want %v", got.Kind, r.kind)
			}
		}
	}
	wantConsulted := []int{7, 4, 2, 1} // SVPC sees all, each later stage only the fall-through
	wantDecided := []int{3, 2, 1, 1}
	for i := 0; i < p.Config().NumStages(); i++ {
		m := p.StageMetrics(i)
		if m.Consulted != wantConsulted[i] {
			t.Errorf("stage %v consulted %d, want %d", p.Config().Stage(i).Name(), m.Consulted, wantConsulted[i])
		}
		if m.Decided != wantDecided[i] {
			t.Errorf("stage %v decided %d, want %d", p.Config().Stage(i).Name(), m.Decided, wantDecided[i])
		}
		if m.Time != 0 {
			t.Errorf("stage %v accumulated time %v with timing off", p.Config().Stage(i).Name(), m.Time)
		}
	}
}

// TestPipelineTimed: with SetTimed the consulted stages accumulate wall
// time; the clock is only read around consulted stages.
func TestPipelineTimed(t *testing.T) {
	p := DefaultConfig().NewPipeline()
	p.SetTimed(true)
	ts := fmSys() // consults every stage
	var total time.Duration
	for i := 0; i < 10000 && total == 0; i++ {
		p.Run(ts)
		total = 0
		for j := 0; j < p.Config().NumStages(); j++ {
			total += p.StageMetrics(j).Time
		}
	}
	if total == 0 {
		t.Fatal("timed pipeline accumulated no stage time")
	}
	// A pipeline that never consults Loop Residue must not time it.
	q := DefaultConfig().NewPipeline()
	q.SetTimed(true)
	for i := 0; i < 100; i++ {
		q.Run(svpcSys())
	}
	if m := q.StageMetrics(2); m.Consulted != 0 || m.Time != 0 {
		t.Fatalf("unconsulted stage accumulated metrics %+v", m)
	}
}

// TestPipelineReuseMatchesFresh is the scratch-reuse regression: one
// long-lived pipeline over a stream of random systems must return exactly
// what a fresh throwaway pipeline (Solve) returns for each — verdict,
// exactness, deciding kind, witness, and trace.
func TestPipelineReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := DefaultConfig().NewPipeline()
	for iter := 0; iter < 3000; iter++ {
		n := 1 + rng.Intn(4)
		cs := randBoxed(rng, n, int64(rng.Intn(6)))
		for k := rng.Intn(5); k > 0; k-- {
			coef := make([]int64, n)
			for j := range coef {
				coef[j] = int64(rng.Intn(5) - 2)
			}
			cs = append(cs, system.Constraint{Coef: coef, C: int64(rng.Intn(11) - 5)})
		}
		ts := sys(n, cs...)
		wantR, wantTr := Solve(ts)
		gotR, gotTr := p.RunTraced(ts)
		if gotR.Outcome != wantR.Outcome || gotR.Exact != wantR.Exact || gotR.Kind != wantR.Kind {
			t.Fatalf("iter %d: reused pipeline %+v, fresh %+v on\n%v", iter, gotR, wantR, cs)
		}
		if !reflect.DeepEqual(gotR.Witness, wantR.Witness) {
			t.Fatalf("iter %d: witness %v, fresh %v", iter, gotR.Witness, wantR.Witness)
		}
		if gotTr.Decided != wantTr.Decided || !reflect.DeepEqual(gotTr.Consulted, wantTr.Consulted) {
			t.Fatalf("iter %d: trace %+v, fresh %+v", iter, gotTr, wantTr)
		}
	}
}
