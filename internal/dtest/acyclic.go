package dtest

import (
	"exactdep/internal/linalg"
	"exactdep/internal/system"
)

// elimEntry records one Acyclic-test elimination step so a witness can be
// reconstructed afterwards.
type elimEntry struct {
	v     int
	fixed bool
	val   int64 // when fixed
	// For unbounded eliminations: sign +1 means the multi-variable
	// constraints only bounded v from above (all coefficients positive), so
	// the dropped constraints are satisfied by a small enough value.
	sign int
	// The dropped constraints are the run [dropStart, dropEnd) of the
	// scratch's shared dropped buffer.
	dropStart, dropEnd int
	selfBound          optInt // v's own single-variable bound on the satisfiable side
}

// Acyclic runs the Acyclic test (paper §3.3). It repeatedly finds a variable
// that the multi-variable constraints bound in only one direction, pins it
// to its single-variable bound on the opposite side (or discharges its
// constraints entirely when that side is unbounded), and substitutes. If all
// multi-variable constraints are eliminated this way the simplified system
// is decided exactly by the bounds check; this succeeds precisely when the
// paper's constraint graph is acyclic.
//
// When a cycle blocks progress the test is inapplicable: it returns
// decided=false together with the partially simplified state, which the
// paper notes "simplifies the system for the next stages".
//
// This convenience wrapper allocates a private scratch; the pipeline calls
// acyclicApply on its own.
func Acyclic(s *state) (res Result, simplified *state, decided bool) {
	return acyclicApply(s, newScratch())
}

// acyclicApply is Acyclic working entirely out of sc: the clone, the
// journal, the dropped-constraint runs, and the witness all live in scratch
// buffers, so a decision allocates nothing at steady state. The returned
// simplified state and witness alias sc and stay valid until its next
// prepare.
func acyclicApply(s *state, sc *Scratch) (res Result, simplified *state, decided bool) {
	st := &sc.ac
	sc.cloneStateInto(st, s)
	sc.journal = sc.journal[:0]
	sc.dropped = sc.dropped[:0]
	for {
		if st.infeasible || st.firstConflict() >= 0 {
			return independent(KindAcyclic), nil, true
		}
		if len(st.multi) == 0 {
			sc.witness = st.boundsWitness(sc.witness)
			replayJournal(sc.witness, sc.journal, sc.dropped)
			return dependent(KindAcyclic, sc.witness), nil, true
		}
		v, sign := st.findOneSided()
		if v < 0 {
			return Result{}, st, false // cycle: not applicable
		}
		entry, err := st.eliminate(v, sign, sc)
		if err != nil {
			// Arithmetic overflow: treat as inapplicable and let the backup
			// test (which handles its own overflow) take over, on a fresh
			// copy of the unsimplified system.
			sc.cloneStateInto(st, s)
			return Result{}, st, false
		}
		sc.journal = append(sc.journal, entry)
	}
}

// findOneSided returns a variable whose multi-constraint coefficients all
// share one sign (+1: only upper bounds, -1: only lower bounds), or -1.
func (s *state) findOneSided() (v, sign int) {
	for i := 0; i < s.n; i++ {
		pos, neg := 0, 0
		for _, c := range s.multi {
			switch {
			case c.Coef[i] > 0:
				pos++
			case c.Coef[i] < 0:
				neg++
			}
		}
		switch {
		case pos == 0 && neg == 0:
			continue
		case neg == 0:
			return i, 1
		case pos == 0:
			return i, -1
		}
	}
	return -1, 0
}

// eliminate removes variable v from all multi-variable constraints, either
// by substituting its tight bound or by dropping the constraints when the
// bound is infinite. Dropped constraints are parked in sc.dropped.
func (s *state) eliminate(v, sign int, sc *Scratch) (elimEntry, error) {
	var fixVal int64
	hasFix := false
	if sign > 0 && s.lb[v].has {
		fixVal, hasFix = s.lb[v].v, true
	}
	if sign < 0 && s.ub[v].has {
		fixVal, hasFix = s.ub[v].v, true
	}
	if hasFix {
		if err := s.substitute(v, fixVal, sc); err != nil {
			return elimEntry{}, err
		}
		return elimEntry{v: v, fixed: true, val: fixVal}, nil
	}
	// Unbounded on the satisfiable side: every multi constraint containing v
	// can be discharged by pushing v far enough.
	entry := elimEntry{v: v, sign: sign, dropStart: len(sc.dropped)}
	if sign > 0 {
		entry.selfBound = s.ub[v]
	} else {
		entry.selfBound = s.lb[v]
	}
	keep := s.multi[:0]
	for _, c := range s.multi {
		if c.Coef[v] != 0 {
			sc.dropped = append(sc.dropped, c)
		} else {
			keep = append(keep, c)
		}
	}
	s.multi = keep
	entry.dropEnd = len(sc.dropped)
	// v's own single bounds are trivially satisfiable now; clear them so the
	// final bounds check ignores v (the replay assigns it a valid value).
	s.lb[v], s.ub[v] = optInt{}, optInt{}
	return entry, nil
}

// substitute sets t_v := val in every multi-variable constraint,
// reclassifying constraints that become single-variable or constant. It
// also pins v's bounds to val. Rewritten coefficient rows come from the
// scratch arena; the multi list is compacted in place (each iteration
// appends at most one constraint, so the write index never passes the read
// index).
func (s *state) substitute(v int, val int64, sc *Scratch) error {
	old := s.multi
	s.multi = s.multi[:0]
	for _, c := range old {
		a := c.Coef[v]
		if a == 0 {
			s.multi = append(s.multi, c)
			continue
		}
		prod, err := linalg.MulChecked(a, val)
		if err != nil {
			return err
		}
		nc, err := linalg.AddChecked(c.C, -prod)
		if err != nil {
			return err
		}
		coef := sc.sys.Row(len(c.Coef))
		copy(coef, c.Coef)
		coef[v] = 0
		norm, ok := (system.Constraint{Coef: coef, C: nc}).NormalizeInPlace()
		if !ok {
			s.infeasible = true
			continue
		}
		s.add(norm)
	}
	s.lb[v] = optInt{has: true, v: val}
	s.ub[v] = optInt{has: true, v: val}
	return nil
}

// replayJournal assigns values to eliminated variables, newest elimination
// first, so every constraint dropped at step k is evaluated with the values
// of all variables that were still alive at step k.
func replayJournal(w []int64, journal []elimEntry, dropped []system.Constraint) {
	for k := len(journal) - 1; k >= 0; k-- {
		e := journal[k]
		if e.fixed {
			w[e.v] = e.val
			continue
		}
		bound := e.selfBound
		for _, c := range dropped[e.dropStart:e.dropEnd] {
			var rest int64
			for j, a := range c.Coef {
				if j == e.v || a == 0 {
					continue
				}
				rest += a * w[j]
			}
			// a_v·v ≤ C - rest
			if e.sign > 0 {
				bound.tightenMin(linalg.FloorDiv(c.C-rest, c.Coef[e.v]))
			} else {
				bound.tightenMax(linalg.CeilDiv(c.C-rest, c.Coef[e.v]))
			}
		}
		if bound.has {
			w[e.v] = bound.v
		}
	}
}
