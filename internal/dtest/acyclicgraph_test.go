package dtest

import (
	"math/rand"
	"strings"
	"testing"

	"exactdep/internal/system"
)

func TestAcyclicGraphPaperExample(t *testing.T) {
	// §3.3: the single constraint t1 + 2t2 - t3 ≤ 0 yields six edges:
	// 1→2, 1→3 (expressing t1), 2→1, 2→3 (expressing t2), and edges from
	// node 3's negative side: -t3 bounded → 3's source node is -3 with
	// targets -1 and -2.
	ts := sys(3, cons(0, 1, 2, -1))
	g := BuildAcyclicGraph(NewState(ts))
	if len(g.Edges) != 6 {
		t.Fatalf("edges = %d, want 6:\n%s", len(g.Edges), g.Dot())
	}
	has := func(from, to string) bool {
		for _, e := range g.Edges {
			if e.From.String() == from && e.To.String() == to {
				return true
			}
		}
		return false
	}
	// Expressing t1: t1 ≤ -2t2 + t3 — the bound depends on pushing t2 down
	// (its -t2 node) and t3 up (+t3 node); symmetrically for t2 and for the
	// negatively-occurring t3, whose -t3 node depends on -t1 and -t2. (The
	// paper's printed edge list lost its minus signs in reproduction; the
	// signs here are the ones that make its leaf condition — "no incoming
	// edges at node i ⇔ no constraint with a_i < 0" — come out right.)
	for _, pair := range [][2]string{
		{"t1", "-t2"}, {"t1", "t3"},
		{"t2", "-t1"}, {"t2", "t3"},
		{"-t3", "-t1"}, {"-t3", "-t2"},
	} {
		if !has(pair[0], pair[1]) {
			t.Errorf("missing edge %s -> %s:\n%s", pair[0], pair[1], g.Dot())
		}
	}
	// A single multi-variable constraint leaves every variable one-sided,
	// so the graph must be acyclic — exactly why §3.3's example is solved
	// by substitution.
	if g.HasCycle() {
		t.Fatalf("single-constraint graph must be acyclic:\n%s", g.Dot())
	}
}

func TestEqualityCycleFromPaper(t *testing.T) {
	// §3.3's closing remark: the equality i1 = i2 represented as two
	// inequalities creates a cycle (i1 ≤ i2 ≤ i1).
	ts := sys(2, cons(0, 1, -1), cons(0, -1, 1))
	g := BuildAcyclicGraph(NewState(ts))
	if !g.HasCycle() {
		t.Fatalf("equality pair must cycle:\n%s", g.Dot())
	}
}

func TestOneSidedChainAcyclic(t *testing.T) {
	// t1 ≤ t2, t2 ≤ t3: a chain with no cycle.
	ts := sys(3, cons(0, 1, -1, 0), cons(0, 0, 1, -1))
	g := BuildAcyclicGraph(NewState(ts))
	if g.HasCycle() {
		t.Fatalf("chain must be acyclic:\n%s", g.Dot())
	}
	if !strings.Contains(g.Dot(), "digraph acyclic") {
		t.Fatal("Dot output malformed")
	}
}

// Property (the paper's claim): whenever the constraint graph is acyclic,
// the substitution method decides the system — our iterative Acyclic test
// must report decided=true.
func TestGraphAcyclicImpliesDecided(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	acyclicSeen := 0
	for iter := 0; iter < 3000; iter++ {
		n := 2 + rng.Intn(3)
		var cs []system.Constraint
		for i := 0; i < n; i++ {
			lo := make([]int64, n)
			hi := make([]int64, n)
			lo[i], hi[i] = -1, 1
			cs = append(cs,
				system.Constraint{Coef: hi, C: int64(rng.Intn(8))},
				system.Constraint{Coef: lo, C: int64(rng.Intn(8))})
		}
		for k := 1 + rng.Intn(3); k > 0; k-- {
			coef := make([]int64, n)
			for j := range coef {
				if rng.Intn(2) == 0 {
					coef[j] = int64(rng.Intn(5) - 2)
				}
			}
			c := system.Constraint{Coef: coef, C: int64(rng.Intn(9) - 4)}
			if nc, ok := c.Normalize(); ok && nc.NumVarsUsed() > 1 {
				cs = append(cs, nc)
			}
		}
		st := NewState(sys(n, cs...))
		if len(st.multi) == 0 {
			continue
		}
		g := BuildAcyclicGraph(st)
		if g.HasCycle() {
			continue
		}
		acyclicSeen++
		if _, _, decided := Acyclic(st); !decided {
			t.Fatalf("iter %d: acyclic graph but iterative method undecided\n%s\nmulti: %v",
				iter, g.Dot(), st.multi)
		}
	}
	if acyclicSeen < 50 {
		t.Fatalf("only %d acyclic samples — generator drifted", acyclicSeen)
	}
}
