package dtest

import (
	"strings"
	"testing"
)

func TestOutcomeStrings(t *testing.T) {
	if Independent.String() != "independent" || Dependent.String() != "dependent" ||
		Unknown.String() != "unknown" {
		t.Fatal("Outcome strings wrong")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindNone:           "none",
		KindSVPC:           "SVPC",
		KindAcyclic:        "Acyclic",
		KindLoopResidue:    "Loop Residue",
		KindFourierMotzkin: "Fourier-Motzkin",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), w)
		}
	}
}

func TestResultString(t *testing.T) {
	r := dependent(KindSVPC, nil)
	if got := r.String(); got != "dependent (SVPC)" {
		t.Fatalf("Result.String = %q", got)
	}
	u := unknown(KindFourierMotzkin)
	if got := u.String(); !strings.Contains(got, "inexact") {
		t.Fatalf("inexact marker missing: %q", got)
	}
}

func TestSolveStateMatchesSolve(t *testing.T) {
	for _, ts := range []struct {
		n  int
		cs [][]int64 // coef..., C
	}{
		{1, [][]int64{{1, 5}, {-1, 0}}},
		{2, [][]int64{{1, -1, 2}, {-1, 1, -1}, {1, 0, 10}, {-1, 0, 0}, {0, 1, 10}, {0, -1, 0}}},
		{2, [][]int64{{2, 3, 5}, {-2, -3, -12}, {1, 0, 100}, {0, 1, 100}, {-1, 0, 100}, {0, -1, 100}}},
	} {
		s := sys(ts.n)
		for _, row := range ts.cs {
			s.Cons = append(s.Cons, cons(row[len(row)-1], row[:len(row)-1]...))
		}
		full, _ := Solve(s.Clone())
		st := SolveState(NewState(s.Clone()))
		if full.Outcome != st.Outcome || full.Kind != st.Kind {
			t.Fatalf("Solve %v vs SolveState %v", full, st)
		}
	}
}
