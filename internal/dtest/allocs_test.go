package dtest

// Allocation tests and benchmarks for the cascade's steady state: once a
// pipeline's scratch buffers have grown to fit the problem shapes flowing
// through it, a problem decided by one of the cheap tests must allocate
// nothing. That is the property that makes the paper's cost ordering real —
// an SVPC probe priced at ~0.1 ms (§7) cannot afford a garbage-collected
// clone of the system per call.

import (
	"testing"

	"exactdep/internal/system"
)

// svpcSys is decided by SVPC: every constraint is single-variable
// (1 ≤ t1 ≤ 10, feasible → Dependent).
func svpcSys() *system.TSystem {
	return sys(1,
		system.Constraint{Coef: []int64{1}, C: 10},
		system.Constraint{Coef: []int64{-1}, C: -1})
}

// acyclicSys is decided by the Acyclic test: one coupling constraint
// t1 ≤ t2 (one-sided in both variables), bounds 0 ≤ t1, t2 ≤ 10.
func acyclicSys() *system.TSystem {
	return sys(2,
		system.Constraint{Coef: []int64{1, -1}, C: 0},
		system.Constraint{Coef: []int64{0, 1}, C: 10},
		system.Constraint{Coef: []int64{-1, 0}, C: 0})
}

// residueSys is decided by Loop Residue: the difference constraints
// t1 - t2 ≤ -1 and t2 - t1 ≤ 0 form a cycle (so Acyclic is inapplicable)
// of weight -1 (so the system is Independent).
func residueSys() *system.TSystem {
	return sys(2,
		system.Constraint{Coef: []int64{1, -1}, C: -1},
		system.Constraint{Coef: []int64{-1, 1}, C: 0})
}

// residueDepSys is decided by Loop Residue with a Dependent verdict (cycle
// of weight +1, Bellman–Ford potentials give the witness).
func residueDepSys() *system.TSystem {
	return sys(2,
		system.Constraint{Coef: []int64{1, -1}, C: 1},
		system.Constraint{Coef: []int64{-1, 1}, C: 0})
}

// fmSys falls through to Fourier–Motzkin: the coefficient 2 keeps Loop
// Residue inapplicable and both variables are two-sided, so Acyclic cannot
// make progress either.
func fmSys() *system.TSystem {
	return sys(2,
		system.Constraint{Coef: []int64{2, -1}, C: 0},
		system.Constraint{Coef: []int64{-2, 1}, C: -1})
}

// TestCascadeZeroAllocs enforces the acceptance criterion: at steady state
// the cascade path of a problem decided by SVPC, Acyclic, or Loop Residue
// performs zero allocations per problem. (Fourier–Motzkin, the rare
// expensive backup, still allocates in its elimination loop.)
func TestCascadeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation")
	}
	cases := []struct {
		name string
		ts   *system.TSystem
		kind Kind
	}{
		{"svpc", svpcSys(), KindSVPC},
		{"acyclic", acyclicSys(), KindAcyclic},
		{"residue-independent", residueSys(), KindLoopResidue},
		{"residue-dependent", residueDepSys(), KindLoopResidue},
	}
	p := DefaultConfig().NewPipeline()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if r := p.Run(c.ts); r.Kind != c.kind {
				t.Fatalf("decided by %v, want %v", r.Kind, c.kind)
			}
			for i := 0; i < 3; i++ { // let every buffer reach steady state
				p.Run(c.ts)
			}
			if n := testing.AllocsPerRun(100, func() { p.Run(c.ts) }); n != 0 {
				t.Errorf("steady-state cascade allocated %.1f times per problem", n)
			}
		})
	}
	t.Run("mixed", func(t *testing.T) {
		// Alternating problem shapes through one pipeline must stay
		// allocation-free too: buffers are sized to the largest shape seen,
		// not reallocated per shape.
		systems := []*system.TSystem{svpcSys(), acyclicSys(), residueSys(), residueDepSys()}
		for i := 0; i < 3; i++ {
			for _, ts := range systems {
				p.Run(ts)
			}
		}
		n := testing.AllocsPerRun(50, func() {
			for _, ts := range systems {
				p.Run(ts)
			}
		})
		if n != 0 {
			t.Errorf("steady-state cascade allocated %.1f times per 4-problem batch", n)
		}
	})
}

// TestFMSolveZeroAllocs enforces PR 5's acceptance criterion on the
// Fourier–Motzkin core itself: once the scratch — constraint list, round
// buffers, bound store, dedup hash set, witness arrays — is warm, an int64
// elimination that decides (either way) allocates nothing. Only the
// big-integer retry and explicit branch-and-bound splits may allocate.
func TestFMSolveZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation")
	}
	// fmDepSys is feasible with integral samples: 2t1 - t2 ≤ 2, t2 ≤ 2t1,
	// boxed. The coefficient 2 keeps Loop Residue inapplicable and both
	// variables two-sided, so FM decides Dependent via back-substitution.
	fmDepSys := func() *system.TSystem {
		return sys(2,
			system.Constraint{Coef: []int64{2, -1}, C: 2},
			system.Constraint{Coef: []int64{-2, 1}, C: 0},
			system.Constraint{Coef: []int64{1, 0}, C: 5},
			system.Constraint{Coef: []int64{-1, 0}, C: 0},
			system.Constraint{Coef: []int64{0, 1}, C: 10},
			system.Constraint{Coef: []int64{0, -1}, C: 0})
	}
	// fmDedupSys carries an exact duplicate and a dominated copy of its
	// coupling row, so the steady state also covers the dedup path.
	fmDedupSys := func() *system.TSystem {
		return sys(2,
			system.Constraint{Coef: []int64{2, -1}, C: 2},
			system.Constraint{Coef: []int64{2, -1}, C: 2},
			system.Constraint{Coef: []int64{2, -1}, C: 7},
			system.Constraint{Coef: []int64{-2, 1}, C: 0},
			system.Constraint{Coef: []int64{1, 0}, C: 5},
			system.Constraint{Coef: []int64{-1, 0}, C: 0},
			system.Constraint{Coef: []int64{0, 1}, C: 10},
			system.Constraint{Coef: []int64{0, -1}, C: 0})
	}
	// fmIndepSys is refuted only after eliminating t1: 2t1 - 3t2 ≤ -1 and
	// -2t1 + t2 ≤ 0 combine to -2t2 ≤ -1 (t2 ≥ 1/2 → t2 ≥ 1), against
	// t2 ≤ 0.
	fmIndepSys := func() *system.TSystem {
		return sys(2,
			system.Constraint{Coef: []int64{2, -3}, C: -1},
			system.Constraint{Coef: []int64{-2, 1}, C: 0},
			system.Constraint{Coef: []int64{0, 1}, C: 0},
			system.Constraint{Coef: []int64{0, -1}, C: 3})
	}
	cases := []struct {
		name string
		ts   *system.TSystem
		out  Outcome
	}{
		{"dependent", fmDepSys(), Dependent},
		{"dedup", fmDedupSys(), Dependent},
		{"independent", fmIndepSys(), Independent},
	}
	p := DefaultConfig().NewPipeline()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if r := p.Run(c.ts); r.Kind != KindFourierMotzkin || r.Outcome != c.out {
				t.Fatalf("premise: decided %v by %v, want %v by FM", r.Outcome, r.Kind, c.out)
			}
			for i := 0; i < 3; i++ {
				p.Run(c.ts)
			}
			if n := testing.AllocsPerRun(100, func() { p.Run(c.ts) }); n != 0 {
				t.Errorf("steady-state FM solve allocated %.1f times per problem", n)
			}
		})
	}
}

// TestFMDedupMetrics pins the redundancy-elimination counters: identical
// rows are dropped (FMDeduped), identical rows with a looser constant
// tighten the survivor in place (FMTightened).
func TestFMDedupMetrics(t *testing.T) {
	p := DefaultConfig().NewPipeline()
	before := p.FMMetrics()
	p.Run(sys(2,
		system.Constraint{Coef: []int64{2, -1}, C: 0},
		system.Constraint{Coef: []int64{2, -1}, C: 0},
		system.Constraint{Coef: []int64{-2, 1}, C: 5},
		system.Constraint{Coef: []int64{-2, 1}, C: -1}))
	after := p.FMMetrics()
	if after.Deduped <= before.Deduped {
		t.Errorf("duplicate row not counted: %+v -> %+v", before, after)
	}
	if after.Tightened <= before.Tightened {
		t.Errorf("dominated row not counted as tightened: %+v -> %+v", before, after)
	}
}

// TestRunTracedReusesScratch pins the opt-in trace to the scratch buffer:
// tracing must not reintroduce a per-problem allocation.
func TestRunTracedReusesScratch(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation")
	}
	p := DefaultConfig().NewPipeline()
	ts := residueSys()
	for i := 0; i < 3; i++ {
		p.RunTraced(ts)
	}
	if n := testing.AllocsPerRun(100, func() { p.RunTraced(ts) }); n != 0 {
		t.Errorf("traced steady-state cascade allocated %.1f times per problem", n)
	}
	_, tr := p.RunTraced(ts)
	want := []Kind{KindSVPC, KindAcyclic, KindLoopResidue}
	if len(tr.Consulted) != len(want) {
		t.Fatalf("consulted %v, want %v", tr.Consulted, want)
	}
	for i, k := range want {
		if tr.Consulted[i] != k {
			t.Fatalf("consulted %v, want %v", tr.Consulted, want)
		}
	}
}

// BenchmarkCascadeAllocs drives one pipeline over a batch covering all four
// deciding stages; the allocs/op column is the tracked regression signal.
func BenchmarkCascadeAllocs(b *testing.B) {
	systems := []*system.TSystem{svpcSys(), acyclicSys(), residueSys(), fmSys()}
	p := DefaultConfig().NewPipeline()
	for _, ts := range systems {
		p.Run(ts)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ts := range systems {
			p.Run(ts)
		}
	}
}

// BenchmarkStage times each stage's Apply in isolation (state preparation
// included), reproducing the §7 per-test cost ordering with allocation
// counts: SVPC < Acyclic < Loop Residue < Fourier–Motzkin.
func BenchmarkStage(b *testing.B) {
	cases := []struct {
		name string
		ts   *system.TSystem
		st   Stage
	}{
		{"SVPC", svpcSys(), svpcStage{}},
		{"Acyclic", acyclicSys(), acyclicStage{}},
		{"LoopResidue", residueSys(), residueStage{}},
		{"FourierMotzkin", fmSys(), fourierStage{}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			sc := newScratch()
			if _, _, decided := c.st.Apply(sc.prepare(c.ts), sc); !decided {
				b.Fatalf("stage %s did not decide its representative problem", c.name)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := sc.prepare(c.ts)
				if _, _, decided := c.st.Apply(s, sc); !decided {
					b.Fatal("stage did not decide")
				}
			}
		})
	}
}
