package dtest

import (
	"math/rand"
	"testing"

	"exactdep/internal/system"
)

// cons builds a constraint Σ coef·t ≤ c.
func cons(c int64, coef ...int64) system.Constraint {
	return system.Constraint{Coef: coef, C: c}
}

// sys builds a TSystem over n t-variables with the given constraints.
func sys(n int, cs ...system.Constraint) *system.TSystem {
	return &system.TSystem{NumT: n, Cons: cs}
}

func TestSVPCPaperExample(t *testing.T) {
	// §3.2 worked example after GCD: 1 ≤ t1 ≤ 10, 1 ≤ t2 ≤ 10,
	// 1 ≤ t2+9 ≤ 10, 1 ≤ t1-10 ≤ 10. lb(t1)=11 > ub(t1)=10 → independent.
	ts := sys(2,
		cons(10, 1, 0), cons(-1, -1, 0), // 1 ≤ t1 ≤ 10
		cons(10, 0, 1), cons(-1, 0, -1), // 1 ≤ t2 ≤ 10
		cons(1, 0, 1), cons(8, 0, -1), // 1 ≤ t2+9 ≤ 10 → t2 ≤ 1, -t2 ≤ 8
		cons(20, 1, 0), cons(-11, -1, 0), // 1 ≤ t1-10 ≤ 10 → t1 ≤ 20, -t1 ≤ -11
	)
	r, tr := Solve(ts)
	if r.Outcome != Independent || !r.Exact || r.Kind != KindSVPC {
		t.Fatalf("got %v", r)
	}
	if tr.Decided != KindSVPC || len(tr.Consulted) != 1 {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestSVPCDependentWitness(t *testing.T) {
	ts := sys(2,
		cons(10, 1, 0), cons(-1, -1, 0),
		cons(5, 0, 1), cons(0, 0, -1),
	)
	r, _ := Solve(ts)
	if r.Outcome != Dependent || !r.Exact || r.Kind != KindSVPC {
		t.Fatalf("got %v", r)
	}
	if !VerifyWitness(ts, r.Witness) {
		t.Fatalf("invalid witness %v", r.Witness)
	}
}

func TestSVPCUnboundedVariable(t *testing.T) {
	// one variable with only a lower bound, another unconstrained
	ts := sys(2, cons(-3, -1, 0))
	r, _ := Solve(ts)
	if r.Outcome != Dependent || r.Kind != KindSVPC {
		t.Fatalf("got %v", r)
	}
	if !VerifyWitness(ts, r.Witness) {
		t.Fatalf("witness %v violates t1 ≥ 3", r.Witness)
	}
}

func TestSVPCTighteningDivision(t *testing.T) {
	// 2·t1 ≤ 5 → t1 ≤ 2; -2·t1 ≤ -5 → t1 ≥ 3: integers only → independent,
	// even though reals admit t1 = 2.5.
	ts := sys(1, cons(5, 2), cons(-5, -2))
	r, _ := Solve(ts)
	if r.Outcome != Independent || r.Kind != KindSVPC {
		t.Fatalf("integer tightening missed: %v", r)
	}
}

func TestAcyclicPaperExample(t *testing.T) {
	// §3.3: constraint t1 + 2t2 - t3 ≤ 0 style systems are acyclic when no
	// variable is bounded in both directions by multi constraints.
	// Build: t1 - t2 - t3 ≤ 0 with box bounds on t2, t3 only as lowers:
	//   t2 ≥ 1, t3 ≥ 0, t1 ≥ 1 — t1 only upper-bounded by the multi.
	ts := sys(3,
		cons(0, 1, -1, -1),
		cons(-1, 0, -1, 0),
		cons(0, 0, 0, -1),
		cons(-1, -1, 0, 0),
	)
	r, tr := Solve(ts)
	if r.Outcome != Dependent || !r.Exact || r.Kind != KindAcyclic {
		t.Fatalf("got %v (trace %+v)", r, tr)
	}
	if !VerifyWitness(ts, r.Witness) {
		t.Fatalf("invalid witness %v", r.Witness)
	}
}

func TestAcyclicIndependent(t *testing.T) {
	// t1 ≤ t2 - 1, t2 ≤ 3, t1 ≥ 3: substitute t2's upper bound... this
	// system is acyclic (t2 only lower-bounded by the multi when read as
	// t2 ≥ t1+1; t1 bounded below by single). Pin t1 = 3 → t2 ≥ 4 > 3.
	ts := sys(2,
		cons(-1, 1, -1), // t1 - t2 ≤ -1
		cons(3, 0, 1),   // t2 ≤ 3
		cons(-3, -1, 0), // t1 ≥ 3
	)
	r, _ := Solve(ts)
	if r.Outcome != Independent || !r.Exact || r.Kind != KindAcyclic {
		t.Fatalf("got %v", r)
	}
}

func TestAcyclicUnboundedDrop(t *testing.T) {
	// t1 - t2 ≤ -1 with t2 ≤ 0 only: t1 has no lower bound → constraints
	// involving t1 can be discharged by pushing t1 low. Dependent.
	ts := sys(2,
		cons(-1, 1, -1),
		cons(0, 0, 1),
	)
	r, _ := Solve(ts)
	if r.Outcome != Dependent || !r.Exact || r.Kind != KindAcyclic {
		t.Fatalf("got %v", r)
	}
	if !VerifyWitness(ts, r.Witness) {
		t.Fatalf("invalid witness %v", r.Witness)
	}
}

func TestLoopResiduePaperFigure1(t *testing.T) {
	// §3.4 / Figure 1: t1 ≥ 1, t3 ≤ 4, 2t1 ≤ 2t3 - 7. The last becomes
	// t1 - t3 ≤ ⌊-7/2⌋ = -4. Cycle t1→t3→n0→t1 has value -4+4-1 = -1 < 0 →
	// independent.
	ts := sys(3,
		cons(-1, -1, 0, 0), // t1 ≥ 1
		cons(4, 0, 0, 1),   // t3 ≤ 4
		cons(-7, 2, 0, -2), // 2t1 - 2t3 ≤ -7
	)
	// note: constraint normalization divides by 2 and floors: t1-t3 ≤ -4
	// t2 exists but is unconstrained; the cycle is blind to it. To force the
	// residue test (not acyclic), bind t1 and t3 in both directions:
	ts.Cons = append(ts.Cons,
		cons(7, -2, 0, 2), // 2t3 - 2t1 ≤ 7  →  t3 - t1 ≤ 3 (cycle-maker)
	)
	r, tr := Solve(ts)
	if r.Outcome != Independent || !r.Exact || r.Kind != KindLoopResidue {
		t.Fatalf("got %v (trace %+v)", r, tr)
	}
}

func TestLoopResidueDependent(t *testing.T) {
	// t1 - t2 ≤ 2, t2 - t1 ≤ -1 (i.e. 1 ≤ t1 - t2 ≤ 2), 0 ≤ t1 ≤ 10,
	// 0 ≤ t2 ≤ 10: feasible, e.g. t1=1, t2=0.
	ts := sys(2,
		cons(2, 1, -1), cons(-1, -1, 1),
		cons(10, 1, 0), cons(0, -1, 0),
		cons(10, 0, 1), cons(0, 0, -1),
	)
	r, _ := Solve(ts)
	if r.Outcome != Dependent || !r.Exact || r.Kind != KindLoopResidue {
		t.Fatalf("got %v", r)
	}
	if !VerifyWitness(ts, r.Witness) {
		t.Fatalf("invalid witness %v", r.Witness)
	}
}

func TestLoopResidueScaledCoefficients(t *testing.T) {
	// The paper's exact extension: a·ti ≤ a·tj + c handled by dividing c
	// with a floor. 3t1 - 3t2 ≤ 2 → t1 - t2 ≤ 0; with t2 - t1 ≤ -1 the
	// system needs t1 - t2 ≥ 1 and ≤ 0 → independent.
	ts := sys(2,
		cons(2, 3, -3), cons(-1, -1, 1),
		cons(5, 1, 0), cons(0, -1, 0),
		cons(5, 0, 1), cons(0, 0, -1),
	)
	r, _ := Solve(ts)
	if r.Outcome != Independent || !r.Exact {
		t.Fatalf("got %v", r)
	}
}

func TestFourierMotzkinIndependent(t *testing.T) {
	// 2t1 + 3t2 ≤ 5, -2t1 - 3t2 ≤ -12: contradiction over the reals → FM
	// (the only applicable test: coefficients are not ± equal).
	ts := sys(2,
		cons(5, 2, 3), cons(-12, -2, -3),
		cons(100, 1, 0), cons(100, 0, 1), cons(100, -1, 0), cons(100, 0, -1),
	)
	r, tr := Solve(ts)
	if r.Outcome != Independent || !r.Exact || r.Kind != KindFourierMotzkin {
		t.Fatalf("got %v (trace %+v)", r, tr)
	}
	if len(tr.Consulted) != 4 {
		t.Fatalf("FM must be the fourth consulted test: %+v", tr)
	}
}

func TestFourierMotzkinDependentIntegralSample(t *testing.T) {
	// 2t1 + 3t2 ≤ 12, t1 + t2 ≥ 1, 0 ≤ t1,t2 ≤ 10 (mixed coefficients
	// force FM past residue).
	ts := sys(2,
		cons(12, 2, 3), cons(-1, -1, -1),
		cons(10, 1, 0), cons(0, -1, 0),
		cons(10, 0, 1), cons(0, 0, -1),
	)
	r, _ := Solve(ts)
	if r.Outcome != Dependent || !r.Exact || r.Kind != KindFourierMotzkin {
		t.Fatalf("got %v", r)
	}
	if r.Witness == nil || !VerifyWitness(ts, r.Witness) {
		t.Fatalf("invalid witness %v", r.Witness)
	}
}

func TestFourierMotzkinNoIntegerFirstVariable(t *testing.T) {
	// Real solutions exist only in a fractional sliver: 2 ≤ 2t1+2t2... use
	// one effective dimension: 1 ≤ 2u ≤ 1 with u = t1 (after making other
	// vars cancel): 2t1 ≥ 1, 2t1 ≤ 1 → t1 = 1/2: no integer, provable at
	// the first back-substitution (paper's special case). But SVPC would
	// catch single-var constraints; so couple: t1 + t2 constrained both
	// ways with a third blocking residue: 2(t1+t2) ∈ [1,1].
	ts := sys(2,
		cons(1, 2, 2),    // 2t1 + 2t2 ≤ 1
		cons(-1, -2, -2), // 2t1 + 2t2 ≥ 1
	)
	// Coefficients are equal-signed pairs so residue doesn't apply; acyclic
	// sees both directions → FM. Normalization floors: 2t1+2t2 ≤ 1 →
	// t1+t2 ≤ 0; -2t1-2t2 ≤ -1 → t1+t2 ≤ ... -t1-t2 ≤ -1 → combined
	// infeasible over integers and detected by FM elimination.
	r, _ := Solve(ts)
	if r.Outcome != Independent || !r.Exact {
		t.Fatalf("got %v", r)
	}
}

func TestFractionalGapBranchAndBound(t *testing.T) {
	// 3t1 - 3t2 = 1 over a box: no integer solution (3 ∤ 1) but reals exist.
	// Written with unequal coefficient shapes to dodge residue: use
	// 3t1 - 2t2 ≤ 1, -3t1 + 2t2 ≤ -1 (equality 3t1 - 2t2 = 1: integer
	// solutions DO exist, t1=1,t2=1). Instead force a genuine fractional
	// gap: 2t1 - 2t2 ≤ 1 and -2t1 + 2t2 ≤ -1 normalizes to t1-t2 ≤ 0 and
	// t1-t2 ≥ 1 → independent. For a case that *needs* FM with a
	// fractional interior, constrain 2t1 ∈ [1,1] and couple t2:
	ts := sys(2,
		cons(1, 2, 4),    // 2t1 + 4t2 ≤ 1
		cons(-1, -2, -4), // 2t1 + 4t2 ≥ 1: even lhs = odd rhs impossible
	)
	r, _ := Solve(ts)
	if r.Outcome != Independent || !r.Exact {
		t.Fatalf("parity-infeasible system: got %v", r)
	}
}

func TestCascadeEmptySystem(t *testing.T) {
	// No constraints at all: trivially dependent (any t works).
	r, tr := Solve(sys(2))
	if r.Outcome != Dependent || !r.Exact || tr.Decided != KindSVPC {
		t.Fatalf("got %v / %+v", r, tr)
	}
}

func TestCascadeInfeasibleFlag(t *testing.T) {
	ts := sys(1, cons(5, 1))
	ts.Infeasible = true
	r, _ := Solve(ts)
	if r.Outcome != Independent || !r.Exact {
		t.Fatalf("got %v", r)
	}
}

func TestResidueGraphRendering(t *testing.T) {
	ts := sys(2,
		cons(2, 1, -1),
		cons(10, 1, 0), cons(0, 0, -1),
	)
	s := NewState(ts)
	g, ok := BuildResidueGraph(s)
	if !ok {
		t.Fatal("difference system must build a residue graph")
	}
	if len(g.Edges) != 3 {
		t.Fatalf("edges = %d, want 3", len(g.Edges))
	}
	if g.Dot() == "" || g.String() == "" {
		t.Fatal("graph rendering empty")
	}
}

// bruteForce exhaustively searches the box [-bound, bound]^n.
func bruteForce(cs []system.Constraint, n int, bound int64) bool {
	assign := make([]int64, n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			for _, c := range cs {
				var s int64
				for j, a := range c.Coef {
					s += a * assign[j]
				}
				if s > c.C {
					return false
				}
			}
			return true
		}
		for v := -bound; v <= bound; v++ {
			assign[i] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

// TestCascadeDifferential cross-checks the cascade against brute force on
// random boxed systems. Every exact verdict must agree with enumeration,
// and every witness must satisfy the system.
func TestCascadeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1991))
	const B = 4
	unknowns := 0
	for iter := 0; iter < 2000; iter++ {
		n := 1 + rng.Intn(3)
		var cs []system.Constraint
		// box bounds keep brute force sound
		for i := 0; i < n; i++ {
			lo := make([]int64, n)
			hi := make([]int64, n)
			lo[i], hi[i] = -1, 1
			cs = append(cs,
				system.Constraint{Coef: hi, C: B},
				system.Constraint{Coef: lo, C: B})
		}
		// random extra constraints
		extra := rng.Intn(4)
		for k := 0; k < extra; k++ {
			coef := make([]int64, n)
			for j := range coef {
				coef[j] = int64(rng.Intn(7) - 3)
			}
			c := system.Constraint{Coef: coef, C: int64(rng.Intn(13) - 6)}
			if nc, ok := c.Normalize(); ok {
				if nc.NumVarsUsed() > 0 {
					cs = append(cs, nc)
				}
			} else {
				cs = append(cs, c) // keep raw infeasible constant? skip
			}
		}
		ts := sys(n, cs...)
		r, _ := Solve(ts)
		want := bruteForce(cs, n, B)
		switch r.Outcome {
		case Dependent:
			if !r.Exact {
				t.Fatalf("iter %d: inexact Dependent should be Unknown", iter)
			}
			if !want {
				t.Fatalf("iter %d: cascade says dependent, brute force disagrees\n%v", iter, cs)
			}
			if r.Witness != nil && !VerifyWitness(ts, r.Witness) {
				t.Fatalf("iter %d: bad witness %v for\n%v", iter, r.Witness, cs)
			}
		case Independent:
			if want {
				t.Fatalf("iter %d: cascade says independent, brute force found a solution\n%v", iter, cs)
			}
		case Unknown:
			unknowns++
		}
	}
	if unknowns > 0 {
		t.Logf("unknown verdicts: %d / 2000", unknowns)
	}
}

// TestCascadeAlwaysExact mirrors the paper's §4 empirical claim on our
// random population: the cascade should essentially never return Unknown on
// small boxed systems.
func TestCascadeAlwaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	unknowns, total := 0, 3000
	for iter := 0; iter < total; iter++ {
		n := 1 + rng.Intn(4)
		var cs []system.Constraint
		for i := 0; i < n; i++ {
			lo := make([]int64, n)
			hi := make([]int64, n)
			lo[i], hi[i] = -1, 1
			cs = append(cs,
				system.Constraint{Coef: hi, C: int64(rng.Intn(20))},
				system.Constraint{Coef: lo, C: int64(rng.Intn(20))})
		}
		for k := rng.Intn(5); k > 0; k-- {
			coef := make([]int64, n)
			for j := range coef {
				coef[j] = int64(rng.Intn(9) - 4)
			}
			cs = append(cs, system.Constraint{Coef: coef, C: int64(rng.Intn(21) - 10)})
		}
		r, _ := Solve(sys(n, cs...))
		if r.Outcome == Unknown {
			unknowns++
		}
	}
	if unknowns*100 > total {
		t.Fatalf("cascade inexact on %d/%d random systems (>1%%)", unknowns, total)
	}
}
