// Package dtest implements the cascade of exact data dependence tests from
// Maydan, Hennessy & Lam (PLDI 1991, §3): the Single Variable Per Constraint
// test, the Acyclic test, the Loop Residue test, and a Fourier–Motzkin
// backup extended with an integer-sample heuristic and branch-and-bound.
// Each test is exact on its applicable class; the cascade tries them in
// order of cost and records which one decided.
package dtest

import "fmt"

// Outcome is the verdict of a dependence test.
type Outcome int

const (
	// Independent: the references can never touch the same location.
	Independent Outcome = iota
	// Dependent: an integer solution exists (a conflict is possible).
	Dependent
	// Unknown: the test could not decide exactly; callers must assume
	// dependence for safety. The paper's suite never hits this in practice.
	Unknown
	// Maybe: the analysis was cut short by a resource budget, deadline, or
	// cancellation before the test could decide; callers must conservatively
	// assume dependence. Distinct from Unknown (a structural limitation of
	// the test) so degraded verdicts stay visible downstream and the memo
	// layer can scope them to the budget class that produced them;
	// Result.Trip names the limit that fired.
	Maybe
)

func (o Outcome) String() string {
	switch o {
	case Independent:
		return "independent"
	case Dependent:
		return "dependent"
	case Maybe:
		return "maybe"
	default:
		return "unknown"
	}
}

// Kind identifies which test decided a problem.
type Kind int

const (
	// KindNone marks results decided before any test ran (e.g. a bound
	// constraint that normalized to an impossible constant).
	KindNone Kind = iota
	// KindSVPC is the Single Variable Per Constraint test (§3.2).
	KindSVPC
	// KindAcyclic is the Acyclic test (§3.3).
	KindAcyclic
	// KindLoopResidue is the Loop Residue test (§3.4).
	KindLoopResidue
	// KindFourierMotzkin is the Fourier–Motzkin backup test (§3.5).
	KindFourierMotzkin
)

func (k Kind) String() string {
	switch k {
	case KindSVPC:
		return "SVPC"
	case KindAcyclic:
		return "Acyclic"
	case KindLoopResidue:
		return "Loop Residue"
	case KindFourierMotzkin:
		return "Fourier-Motzkin"
	default:
		return "none"
	}
}

// CostRank is the test's rank in the paper's cost ordering (§3 orders the
// cascade cheapest first; §7 prices the tests at roughly 0.1, 0.5, 0.9 and
// 3 ms on the paper's hardware). 1 is cheapest; KindNone ranks 0. The rank
// doubles as the unit cost of one applicability probe in the Table 6
// cost-accounting report.
func (k Kind) CostRank() int {
	switch k {
	case KindSVPC:
		return 1
	case KindAcyclic:
		return 2
	case KindLoopResidue:
		return 3
	case KindFourierMotzkin:
		return 4
	default:
		return 0
	}
}

// Result is the outcome of a test or of the whole cascade.
type Result struct {
	Outcome Outcome
	// Exact is true when the verdict is definitive. Only Unknown and Maybe
	// results are inexact.
	Exact bool
	// Kind is the test that decided.
	Kind Kind
	// Trip records which budget limit degraded the verdict when Outcome is
	// Maybe (TripNone otherwise) — the provenance the stats counters and the
	// memo budget-class scoping key off.
	Trip TripReason
	// Witness is a satisfying assignment of the free t variables when the
	// deciding test produced one (nil otherwise).
	Witness []int64
}

func (r Result) String() string {
	s := fmt.Sprintf("%s (%s", r.Outcome, r.Kind)
	if r.Trip != TripNone {
		s += ", budget: " + r.Trip.String()
	} else if !r.Exact {
		s += ", inexact"
	}
	return s + ")"
}

func independent(k Kind) Result { return Result{Outcome: Independent, Exact: true, Kind: k} }

func dependent(k Kind, w []int64) Result {
	return Result{Outcome: Dependent, Exact: true, Kind: k, Witness: w}
}

func unknown(k Kind) Result { return Result{Outcome: Unknown, Kind: k} }
