package dtest

import (
	"fmt"
	"strings"

	"exactdep/internal/linalg"
)

// ResidueGraph is the constraint graph of the Loop Residue test (paper §3.4,
// Figure 1): one node per variable plus the special node n0 representing the
// constant 0, and an edge u→v with weight w for every constraint
// t_u ≤ t_v + w. A cycle's weight bounds 0 ≤ w, so any negative cycle
// refutes the system.
type ResidueGraph struct {
	N     int // variable nodes 0..N-1; node N is n0
	Edges []ResidueEdge
}

// ResidueEdge is a single difference constraint t_From ≤ t_To + Weight.
type ResidueEdge struct {
	From, To int
	Weight   int64
}

// node names n0 as "t0"-style labels for rendering.
func (g *ResidueGraph) nodeName(i int) string {
	if i == g.N {
		return "n0"
	}
	return fmt.Sprintf("t%d", i+1)
}

// String renders the graph edge list deterministically (used to reproduce
// the paper's Figure 1).
func (g *ResidueGraph) String() string {
	var b strings.Builder
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "%s -> %s [%d]\n", g.nodeName(e.From), g.nodeName(e.To), e.Weight)
	}
	return b.String()
}

// Dot renders the graph in Graphviz dot syntax.
func (g *ResidueGraph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph residue {\n")
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  %s -> %s [label=\"%d\"];\n", g.nodeName(e.From), g.nodeName(e.To), e.Weight)
	}
	b.WriteString("}\n")
	return b.String()
}

// BuildResidueGraph converts the state into a residue graph. It reports
// ok=false when some multi-variable constraint is not expressible as
// a·(t_i - t_j) ≤ c — the class Shostak's extensions handle only inexactly,
// which the paper therefore routes to Fourier–Motzkin instead.
func BuildResidueGraph(s *state) (*ResidueGraph, bool) {
	g := &ResidueGraph{}
	if !buildResidueGraphInto(g, s) {
		return nil, false
	}
	return g, true
}

// buildResidueGraphInto is BuildResidueGraph reusing g's edge buffer.
func buildResidueGraphInto(g *ResidueGraph, s *state) bool {
	g.N = s.n
	g.Edges = g.Edges[:0]
	for _, c := range s.multi {
		// exactly two variables with coefficients +a and -a
		pi, ni := -1, -1
		var a int64
		ok := true
		for j, v := range c.Coef {
			switch {
			case v == 0:
			case v > 0 && pi == -1:
				pi, a = j, v
			case v < 0 && ni == -1:
				ni = j
				if a != 0 && -v != a {
					ok = false
				}
				if a == 0 {
					a = -v
				}
			default:
				ok = false
			}
		}
		if !ok || pi == -1 || ni == -1 || c.Coef[pi] != -c.Coef[ni] {
			return false
		}
		// a(t_pi - t_ni) ≤ c  →  t_pi - t_ni ≤ ⌊c/a⌋  (integer tightening,
		// the exact extension the paper describes for a·t_i ≤ a·t_j + c)
		g.Edges = append(g.Edges, ResidueEdge{From: pi, To: ni, Weight: linalg.FloorDiv(c.C, a)})
	}
	for i := 0; i < s.n; i++ {
		if s.ub[i].has { // t_i ≤ 0 + ub
			g.Edges = append(g.Edges, ResidueEdge{From: i, To: s.n, Weight: s.ub[i].v})
		}
		if s.lb[i].has { // 0 ≤ t_i - lb  →  n0 ≤ t_i + (-lb)
			g.Edges = append(g.Edges, ResidueEdge{From: s.n, To: i, Weight: -s.lb[i].v})
		}
	}
	return true
}

// LoopResidue runs the Loop Residue test (paper §3.4) on a system whose
// multi-variable constraints are all same-coefficient differences. The
// system is independent iff the residue graph has a negative-weight cycle;
// otherwise Bellman–Ford potentials give an integral witness (difference
// constraint systems are integrally feasible whenever real-feasible, which
// keeps the test exact). The bool reports applicability.
//
// This convenience wrapper allocates a private scratch; the pipeline calls
// residueApply on its own.
func LoopResidue(s *state) (Result, bool) {
	return residueApply(s, newScratch())
}

// residueApply is LoopResidue working out of sc: the graph, the distance
// vector, and the witness all reuse scratch buffers. The witness aliases sc
// and stays valid until its next prepare.
func residueApply(s *state, sc *Scratch) (Result, bool) {
	if s.infeasible || s.firstConflict() >= 0 {
		return independent(KindLoopResidue), true
	}
	g := &sc.graph
	if !buildResidueGraphInto(g, s) {
		return Result{}, false
	}
	dist, neg := bellmanFordInto(g, sc.dist)
	sc.dist = dist
	if neg {
		return independent(KindLoopResidue), true
	}
	// Potentials: t_u ≤ t_v + w holds for t_x = -dist[x]; shift so that the
	// n0 node maps to exactly 0.
	w := sc.witness
	if cap(w) < s.n {
		w = make([]int64, s.n)
	} else {
		w = w[:s.n]
	}
	sc.witness = w
	shift := dist[g.N]
	for i := 0; i < s.n; i++ {
		w[i] = -dist[i] + shift
	}
	return dependent(KindLoopResidue, w), true
}

// bellmanFordInto runs negative-cycle detection over the whole graph using
// an implicit super-source (all distances start at 0), reusing buf for the
// distance vector when it has capacity.
func bellmanFordInto(g *ResidueGraph, buf []int64) (dist []int64, negCycle bool) {
	n := g.N + 1
	dist = buf
	if cap(dist) < n {
		dist = make([]int64, n)
	} else {
		dist = dist[:n]
		for i := range dist {
			dist[i] = 0
		}
	}
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range g.Edges {
			// edge From→To weight w encodes t_From ≤ t_To + w; in the
			// potential formulation relax dist[To] against dist[From] + w
			// reversed: we want dist such that dist[To] ≤ dist[From] + w.
			if d := dist[e.From] + e.Weight; d < dist[e.To] {
				dist[e.To] = d
				changed = true
			}
		}
		if !changed {
			return dist, false
		}
	}
	return dist, true
}
