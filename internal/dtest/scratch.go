package dtest

import (
	"exactdep/internal/system"
)

// Scratch owns every buffer the cascade needs for one problem: the
// classified state, the Acyclic test's working clone and elimination
// journal, the witness and trace buffers, the Loop Residue graph, and the
// Fourier–Motzkin flat constraint list, with a shared coefficient-row arena
// underneath. Reusing one Scratch across problems makes the steady-state
// cascade path (an SVPC or Acyclic decision) allocation-free, which is what
// lets the cheap tests actually run at the cost the paper prices them at
// (§7). A Scratch is not safe for concurrent use — each Pipeline owns one,
// and the concurrent driver gives every worker its own Pipeline. The memo
// layer follows the same pattern: each worker owns a memo.Encoder (key
// scratch) and a memo.L1, sharing only the lock-free L2 table.
type Scratch struct {
	sys system.Scratch // coefficient-row arena (cloned/substituted/expanded rows)

	st state // primary classified state of the current problem
	ac state // the Acyclic test's working clone

	witness   []int64             // witness under construction (aliased by Result.Witness)
	consulted []Kind              // trace buffer (aliased by Trace.Consulted)
	journal   []elimEntry         // Acyclic elimination journal
	dropped   []system.Constraint // backing store for the journal's dropped-constraint runs
	cons      []system.Constraint // Fourier–Motzkin flat constraint list
	graph     ResidueGraph        // Loop Residue graph with a reusable edge buffer
	dist      []int64             // Bellman–Ford distance buffer
	fm        fmScratch           // Fourier–Motzkin round/bound/witness workspace

	// bud meters the expensive end of the cascade (Fourier–Motzkin and its
	// branch-and-bound) for this problem; reset per prepare. The cheap tests
	// never consult it.
	bud budgetState
}

// newScratch returns an empty Scratch; buffers grow on demand and reach a
// steady state after a few problems.
func newScratch() *Scratch { return &Scratch{} }

// prepare resets the scratch for a new problem and classifies ts into the
// primary state. Buffers handed out for the previous problem (witness,
// trace, arena rows) are invalidated.
func (sc *Scratch) prepare(ts *system.TSystem) *state {
	sc.sys.Reset()
	sc.bud.reset()
	newStateInto(&sc.st, ts)
	return &sc.st
}

// cloneStateInto deep-copies src into dst, drawing coefficient rows from the
// arena so the copy allocates nothing once the buffers reach steady state.
func (sc *Scratch) cloneStateInto(dst, src *state) {
	dst.n = src.n
	dst.infeasible = src.infeasible
	dst.lb = append(dst.lb[:0], src.lb...)
	dst.ub = append(dst.ub[:0], src.ub...)
	dst.multi = dst.multi[:0]
	for _, c := range src.multi {
		coef := sc.sys.Row(len(c.Coef))
		copy(coef, c.Coef)
		dst.multi = append(dst.multi, system.Constraint{Coef: coef, C: c.C})
	}
}
