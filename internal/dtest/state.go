package dtest

import (
	"exactdep/internal/linalg"
	"exactdep/internal/system"
)

// optInt is an optional bound value (absent = unbounded in that direction).
type optInt struct {
	has bool
	v   int64
}

func (o *optInt) tightenMax(v int64) { // lower bound: keep the largest
	if !o.has || v > o.v {
		o.has, o.v = true, v
	}
}

func (o *optInt) tightenMin(v int64) { // upper bound: keep the smallest
	if !o.has || v < o.v {
		o.has, o.v = true, v
	}
}

// state is the shared working form of a t-space system: per-variable bounds
// accumulated from single-variable constraints, plus the remaining
// multi-variable constraints.
type state struct {
	n          int
	lb, ub     []optInt
	multi      []system.Constraint
	infeasible bool
}

// newState classifies the constraints of ts into a fresh state.
func newState(ts *system.TSystem) *state {
	s := &state{}
	newStateInto(s, ts)
	return s
}

// newStateInto classifies the constraints of ts into s, reusing s's buffers.
func newStateInto(s *state, ts *system.TSystem) {
	s.reset(ts.NumT)
	s.infeasible = ts.Infeasible
	for _, c := range ts.Cons {
		s.add(c)
	}
}

// reset reinitializes s for a system of n variables, keeping buffer capacity.
func (s *state) reset(n int) {
	s.n = n
	s.infeasible = false
	if cap(s.lb) < n {
		s.lb = make([]optInt, n)
	} else {
		s.lb = s.lb[:n]
		for i := range s.lb {
			s.lb[i] = optInt{}
		}
	}
	if cap(s.ub) < n {
		s.ub = make([]optInt, n)
	} else {
		s.ub = s.ub[:n]
		for i := range s.ub {
			s.ub[i] = optInt{}
		}
	}
	s.multi = s.multi[:0]
}

// add classifies one normalized constraint into the state.
func (s *state) add(c system.Constraint) {
	switch c.NumVarsUsed() {
	case 0:
		if c.C < 0 {
			s.infeasible = true
		}
	case 1:
		for i, a := range c.Coef {
			if a == 0 {
				continue
			}
			s.bound(i, a, c.C)
			break
		}
	default:
		s.multi = append(s.multi, c)
	}
}

// bound records a·t_i ≤ c as a lower or upper bound on t_i.
func (s *state) bound(i int, a, c int64) {
	if a > 0 {
		s.ub[i].tightenMin(linalg.FloorDiv(c, a))
	} else {
		s.lb[i].tightenMax(linalg.CeilDiv(c, a))
	}
}

// firstConflict returns the first variable with lb > ub, or -1.
func (s *state) firstConflict() int {
	for i := 0; i < s.n; i++ {
		if s.lb[i].has && s.ub[i].has && s.lb[i].v > s.ub[i].v {
			return i
		}
	}
	return -1
}

// boundsWitness picks a value inside [lb,ub] for every variable, assuming
// the bounds are consistent. Unbounded variables get 0 clamped into range.
// The witness is written into buf when it has capacity (every element is
// overwritten), else into a fresh slice; the filled slice is returned.
func (s *state) boundsWitness(buf []int64) []int64 {
	w := buf
	if cap(w) < s.n {
		w = make([]int64, s.n)
	} else {
		w = w[:s.n]
	}
	for i := 0; i < s.n; i++ {
		w[i] = 0
		switch {
		case s.lb[i].has && s.ub[i].has:
			w[i] = s.lb[i].v + (s.ub[i].v-s.lb[i].v)/2
		case s.lb[i].has:
			if s.lb[i].v > 0 {
				w[i] = s.lb[i].v
			}
		case s.ub[i].has:
			if s.ub[i].v < 0 {
				w[i] = s.ub[i].v
			}
		}
	}
	return w
}

// allConstraintsInto reassembles the state into a flat constraint list
// (single-variable bounds first, then multis), for the Fourier–Motzkin
// backup which wants the whole system. The list and the bound rows live in
// the scratch and stay valid until its next prepare.
func (s *state) allConstraintsInto(sc *Scratch) []system.Constraint {
	out := sc.cons[:0]
	for i := 0; i < s.n; i++ {
		if s.lb[i].has { // t_i ≥ lb  →  -t_i ≤ -lb
			coef := sc.sys.ZeroRow(s.n)
			coef[i] = -1
			out = append(out, system.Constraint{Coef: coef, C: -s.lb[i].v})
		}
		if s.ub[i].has {
			coef := sc.sys.ZeroRow(s.n)
			coef[i] = 1
			out = append(out, system.Constraint{Coef: coef, C: s.ub[i].v})
		}
	}
	out = append(out, s.multi...)
	sc.cons = out
	return out
}
