package exactdep_test

import (
	"os"
	"path/filepath"
	"testing"

	"exactdep"
)

// TestAnalyzeCorpusStorePath drives the facade's one-call incremental
// workflow: first AnalyzeCorpus creates the store at Options.StorePath,
// the second serves every unit from it, and an edit re-solves only the
// edited unit.
func TestAnalyzeCorpusStorePath(t *testing.T) {
	root := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(root, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("p.loop", "for i = 1 to 100\n  a[i+1] = a[i] + 3\nend\n")
	write("q.loop", "for i = 1 to 50\n  b[2*i] = b[2*i+1] + 1\nend\n")

	opts := exactdep.Options{
		Memoize: true, ImprovedMemo: true,
		DirectionVectors: true, PruneUnused: true, PruneDistance: true,
		StorePath: filepath.Join(t.TempDir(), "verdicts.store"),
	}

	cold, err := exactdep.AnalyzeCorpus(exactdep.CorpusDir(root), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.UnitsSolved != 2 || cold.Stats.UnitsReused != 0 {
		t.Fatalf("cold stats: %+v", cold.Stats)
	}
	if len(cold.Units) != 2 || cold.Units[0].Name != "p.loop" || cold.Units[1].Name != "q.loop" {
		t.Fatalf("cold units: %+v", cold.Units)
	}
	if _, err := os.Stat(opts.StorePath); err != nil {
		t.Fatalf("store file not written: %v", err)
	}

	warm, err := exactdep.AnalyzeCorpus(exactdep.CorpusDir(root), opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.UnitsReused != 2 || warm.Stats.UnitsSolved != 0 {
		t.Fatalf("warm stats: %+v", warm.Stats)
	}
	if warm.Counters.Pairs != 0 {
		t.Fatalf("warm run analyzed %d pairs, want 0", warm.Counters.Pairs)
	}
	for ui, u := range warm.Units {
		if !u.Reused || u.Fingerprint.IsZero() {
			t.Fatalf("warm unit %d not reused: %+v", ui, u)
		}
		cu := cold.Units[ui]
		if len(u.Results) != len(cu.Results) {
			t.Fatalf("unit %d result count diverged", ui)
		}
		for ri := range u.Results {
			w, c := u.Results[ri], cu.Results[ri]
			if w.Outcome != c.Outcome || w.Exact != c.Exact || len(w.Vectors) != len(c.Vectors) {
				t.Fatalf("unit %d result %d diverged: %+v vs %+v", ui, ri, w, c)
			}
		}
	}

	write("p.loop", "for i = 1 to 100\n  a[i+2] = a[i] + 3\nend\n")
	dirty, err := exactdep.AnalyzeCorpus(exactdep.CorpusDir(root), opts)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.Stats.UnitsSolved != 1 || dirty.Stats.UnitsReused != 1 {
		t.Fatalf("dirty stats: %+v", dirty.Stats)
	}
	if dirty.Units[0].Reused || !dirty.Units[1].Reused {
		t.Fatalf("wrong unit re-solved: %+v", dirty.Stats)
	}
}
