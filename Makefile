GO ?= go

.PHONY: build test vet race check allocgate bench bench-json benchcmp benchcmp-gate serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -timeout 120s ./...

# allocgate re-runs the steady-state allocation assertions without the race
# detector (they skip themselves under it, since the instrumentation
# allocates), so the zero-allocation cascade path, the zero-allocation
# memo path (encode + lookup + hit), the zero-allocation Fourier–Motzkin
# solve, and the clone-free refinement walk stay gated even though the main
# test run is race-enabled.
allocgate:
	$(GO) test ./internal/dtest -run 'TestCascadeZeroAllocs|TestRunTracedReusesScratch|TestBudgetZeroAllocs|TestFMSolveZeroAllocs'
	$(GO) test ./internal/memo -run 'TestEncoderZeroAllocs|TestMemoHitZeroAllocs'
	$(GO) test ./internal/depvec -run 'TestRefineZeroAllocs'

# check is the CI gate: vet plus race-enabled tests, so the concurrent
# driver (core.AnalyzeAll, memo.ShardedTable) is race-checked on every run,
# plus the allocation-regression gate and the service smoke (a real
# depserve process loaded by depload). Set PERFGATE=1 to also run the
# wall-clock perf gate (benchcmp-gate) — opt-in because ns/op on a shared or
# throttled host is too noisy to block every CI run on.
check: vet race allocgate serve-smoke
	@if [ "$(PERFGATE)" = "1" ]; then $(MAKE) benchcmp-gate; fi

# serve-smoke boots a real depserve process on a random port (small queue,
# so the burst exercises admission control), replays a short rated run plus
# an overload burst with depload, and requires zero 5xx responses and
# served verdicts byte-identical to a local batch run. depload SIGTERMs the
# server at the end and requires a clean drain, so graceful shutdown is
# covered by a real process, not just the in-process tests. The second run
# turns on two executors with coalescing (max-batch 8) so the warm-analyzer
# batch path and the narrowed store lock are exercised — and byte-checked —
# by a real process too.
serve-smoke:
	$(GO) build -o .smoke_depserve ./cmd/depserve
	$(GO) run ./cmd/depload -spawn ./.smoke_depserve -spawn-flags "-queue 8" \
		-rate 40 -duration 2s -burst 24 -large-nests 16 -check -out .smoke_serve.json
	$(GO) run ./cmd/depload -spawn ./.smoke_depserve -spawn-flags "-queue 8 -executors 2 -max-batch 8" \
		-rate 40 -duration 2s -burst 24 -large-nests 16 -check -out .smoke_serve.json
	@rm -f .smoke_depserve .smoke_serve.json

# bench runs the paper-evaluation benchmarks (root package) and the cascade,
# memo, and refinement stage/allocation microbenchmarks with allocation
# counts.
bench:
	$(GO) test -run '^$$' -bench . -benchmem . ./internal/dtest ./internal/memo ./internal/depvec

# bench-json writes the machine-readable perf baseline (ns/op, allocs/op,
# memo hit rates over the suite, budget-trip profile of the FM-hard
# adversarial suite, refinement counter profile, cold large-corpus scaling,
# incremental corpus cold/warm split, pipelined corpus cold/warm from mem
# and dir sources with per-stage timing, serve request-model split with a
# per-request latency profile, host metadata) so future PRs can diff
# against it.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR10.json

# benchcmp diffs the previous PR's committed baseline against this PR's.
benchcmp:
	$(GO) run ./cmd/benchcmp BENCH_PR9.json BENCH_PR10.json

# BASELINE is the committed perf baseline benchcmp-gate measures against.
BASELINE := BENCH_PR10.json

# benchcmp-gate re-measures the gated benchmarks (just those, via the
# benchjson -only filter) and fails if one regressed more than 15% in ns/op
# against the committed baseline. The corpus warm path is the incremental
# layer's headline number, and the warm Dir-backed pipeline run is the
# front-end (parse+fingerprint+probe) twin of it, so both are gated
# alongside the memo-hot pass and the warm serve request model (the
# depserve executor's cross-request memo dividend). A missing baseline file fails loudly up
# front rather than as a confusing benchcmp read error — PERFGATE=1 on
# check means someone asked for the gate, so silently skipping it would be
# worse. Opt into the gate from check with PERFGATE=1.
benchcmp-gate:
	@if [ ! -f $(BASELINE) ]; then \
		echo "benchcmp-gate: baseline $(BASELINE) is missing — run 'make bench-json' and commit it"; \
		exit 1; \
	fi
	$(GO) run ./cmd/benchjson -only analyze_all_memo_hot -out .bench_gate.json
	$(GO) run ./cmd/benchcmp -gate analyze_all_memo_hot_workers_4 -tolerance 15 $(BASELINE) .bench_gate.json
	$(GO) run ./cmd/benchjson -only corpus_incremental_warm -out .bench_gate.json
	$(GO) run ./cmd/benchcmp -gate corpus_incremental_warm_1pct_workers_1 -tolerance 15 $(BASELINE) .bench_gate.json
	$(GO) run ./cmd/benchjson -only corpus_pipeline_warm_dir_workers_1 -out .bench_gate.json
	$(GO) run ./cmd/benchcmp -gate corpus_pipeline_warm_dir_workers_1 -tolerance 15 $(BASELINE) .bench_gate.json
	$(GO) run ./cmd/benchjson -only serve_batch_warm -out .bench_gate.json
	$(GO) run ./cmd/benchcmp -gate serve_batch_warm_workers_1 -tolerance 15 $(BASELINE) .bench_gate.json
	@rm -f .bench_gate.json
