GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: vet plus race-enabled tests, so the concurrent
# driver (core.AnalyzeAll, memo.ShardedTable) is race-checked on every run.
check: vet race

bench:
	$(GO) test -bench=. -benchmem
