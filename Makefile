GO ?= go

.PHONY: build test vet race check allocgate bench bench-json benchcmp

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -timeout 120s ./...

# allocgate re-runs the steady-state allocation assertions without the race
# detector (they skip themselves under it, since the instrumentation
# allocates), so the zero-allocation cascade path, the zero-allocation
# memo path (encode + lookup + hit), the zero-allocation Fourier–Motzkin
# solve, and the clone-free refinement walk stay gated even though the main
# test run is race-enabled.
allocgate:
	$(GO) test ./internal/dtest -run 'TestCascadeZeroAllocs|TestRunTracedReusesScratch|TestBudgetZeroAllocs|TestFMSolveZeroAllocs'
	$(GO) test ./internal/memo -run 'TestEncoderZeroAllocs|TestMemoHitZeroAllocs'
	$(GO) test ./internal/depvec -run 'TestRefineZeroAllocs'

# check is the CI gate: vet plus race-enabled tests, so the concurrent
# driver (core.AnalyzeAll, memo.ShardedTable) is race-checked on every run,
# plus the allocation-regression gate.
check: vet race allocgate

# bench runs the paper-evaluation benchmarks (root package) and the cascade,
# memo, and refinement stage/allocation microbenchmarks with allocation
# counts.
bench:
	$(GO) test -run '^$$' -bench . -benchmem . ./internal/dtest ./internal/memo ./internal/depvec

# bench-json writes the machine-readable perf baseline (ns/op, allocs/op,
# memo hit rates over the suite, budget-trip profile of the FM-hard
# adversarial suite, refinement counter profile) so future PRs can diff
# against it.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR5.json

# benchcmp diffs the previous PR's committed baseline against this PR's.
benchcmp:
	$(GO) run ./cmd/benchcmp BENCH_PR4.json BENCH_PR5.json
