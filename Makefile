GO ?= go

.PHONY: build test vet race check allocgate bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# allocgate re-runs the steady-state allocation assertions without the race
# detector (they skip themselves under it, since the instrumentation
# allocates), so the zero-allocation cascade path stays gated even though
# the main test run is race-enabled.
allocgate:
	$(GO) test ./internal/dtest -run 'TestCascadeZeroAllocs|TestRunTracedReusesScratch'

# check is the CI gate: vet plus race-enabled tests, so the concurrent
# driver (core.AnalyzeAll, memo.ShardedTable) is race-checked on every run,
# plus the allocation-regression gate.
check: vet race allocgate

# bench runs the paper-evaluation benchmarks (root package) and the cascade
# stage/allocation microbenchmarks (internal/dtest) with allocation counts.
bench:
	$(GO) test -run '^$$' -bench . -benchmem . ./internal/dtest
