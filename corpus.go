package exactdep

// Corpus-level incremental analysis: the whole-corpus layer over the
// analyzer. A Corpus is any ordered set of named units (directory trees of
// DSL files, explicit file lists, or in-memory units); the driver
// fingerprints each unit, serves unchanged units from a persistent verdict
// store, and batches only changed/new units through the analyzer. See
// internal/corpus and the ARCHITECTURE.md "Corpus layer" section.

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"

	"exactdep/internal/core"
	"exactdep/internal/corpus"
	"exactdep/internal/memo"
)

// Corpus-layer types.
type (
	// Corpus enumerates the units of a corpus in deterministic order.
	Corpus = corpus.Source
	// CorpusUnit is one named member of a corpus: the invalidation granule
	// of incremental analysis.
	CorpusUnit = corpus.Unit
	// CorpusMem is an in-memory corpus (the units themselves).
	CorpusMem = corpus.Mem
	// CorpusDriver is the incremental corpus driver.
	CorpusDriver = corpus.Driver
	// CorpusStore is the persistent fingerprint → verdict store.
	CorpusStore = corpus.Store
	// CorpusStats counts one run's incremental traffic (units and pairs
	// reused vs solved).
	CorpusStats = corpus.Stats
	// UnitResult is one unit's outcome in corpus order.
	UnitResult = corpus.UnitResult
	// Fingerprint is the 128-bit structural digest of a unit's dependence
	// input.
	Fingerprint = memo.Fingerprint
)

// Corpus constructors.
var (
	// CorpusDir is a Corpus over every *.loop file under a directory tree.
	CorpusDir = corpus.Dir
	// CorpusFiles is a Corpus over an explicit list of DSL files.
	CorpusFiles = corpus.Files
	// NewCorpusDriver returns a fresh incremental driver (workers: 1
	// serial, <= 0 GOMAXPROCS).
	NewCorpusDriver = corpus.NewDriver
	// NewCorpusStore returns an empty verdict store bound to an options
	// signature.
	NewCorpusStore = corpus.NewStore
	// LoadCorpusStore reads a store snapshot, validating its signature.
	LoadCorpusStore = corpus.LoadStore
)

// CorpusReport is the result of analyzing one corpus.
type CorpusReport struct {
	// Units holds one result per unit, in corpus order.
	Units []UnitResult
	// Stats counts the run's incremental traffic.
	Stats CorpusStats
	// Counters snapshots the analyzer counters after the run (covers only
	// the units actually solved; store-served units cost no analysis).
	Counters Counters
}

// CorpusRequest is the one corpus-analysis entry value: it names the corpus
// (exactly one of Dir, Files, or Source) and carries the analysis Options.
// The facade wrappers (AnalyzeCorpus, AnalyzeCorpusContext), the CLI's
// corpus mode, and the depserve service's /v1/corpus endpoint all reduce to
// this value, so every front end selects corpora and validates options the
// same way.
type CorpusRequest struct {
	// Dir selects every *.loop file under a directory tree (CorpusDir).
	Dir string
	// Files selects an explicit list of DSL files (CorpusFiles).
	Files []string
	// Source is any pre-built corpus (in-memory units, custom sources).
	Source Corpus
	// Options configures the analyzer. Options.Workers sizes the whole
	// load/fingerprint/probe/solve pipeline (0 serial, negative
	// GOMAXPROCS); Options.StorePath attaches the persistent verdict
	// store (loaded when present, saved back after the run).
	Options Options
}

// corpus resolves the request's corpus selection.
func (r *CorpusRequest) corpus() (Corpus, error) {
	n := 0
	if r.Dir != "" {
		n++
	}
	if len(r.Files) > 0 {
		n++
	}
	if r.Source != nil {
		n++
	}
	if n != 1 {
		return nil, errCorpusSelection
	}
	switch {
	case r.Dir != "":
		return CorpusDir(r.Dir), nil
	case len(r.Files) > 0:
		return CorpusFiles(r.Files...), nil
	default:
		return r.Source, nil
	}
}

var errCorpusSelection = errors.New("exactdep: CorpusRequest must set exactly one of Dir, Files, or Source")

// AnalyzeCorpusRequest analyzes one corpus request. When Options.StorePath
// is set, the verdict store is loaded from that path if it exists (it must
// match the configuration), consulted so only changed or new units are
// re-solved, and saved back after the run — the incremental IDE/CI workflow
// in one call. Without a StorePath every unit is solved fresh in a single
// batch with shared memo tables.
//
// Options.Workers sizes the whole corpus pipeline as in AnalyzeUnitContext
// (0 serial, negative GOMAXPROCS): at more than one worker the driver
// loads, fingerprints, and store-probes units with a worker pool and
// overlaps analyzer batches with the rest of the front end, with canonical
// results, counters, and store traffic identical to the serial run at every
// worker count. Cut-short units degrade to sound Maybe verdicts and are
// never stored. Invalid options are rejected up front with the shared
// Options.Validate error.
func AnalyzeCorpusRequest(ctx context.Context, req CorpusRequest) (*CorpusReport, error) {
	opts := req.Options
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	src, err := req.corpus()
	if err != nil {
		return nil, err
	}
	d := corpus.NewDriver(opts, core.PipelineWorkers(opts.Workers))
	if opts.StorePath != "" {
		store, err := openStore(opts)
		if err != nil {
			return nil, err
		}
		if err := d.SetStore(store); err != nil {
			return nil, err
		}
	}
	urs, err := d.RunAll(ctx, src)
	if err != nil {
		return nil, err
	}
	if opts.StorePath != "" {
		if err := saveStore(opts.StorePath, d.Store()); err != nil {
			return nil, err
		}
	}
	return &CorpusReport{Units: urs, Stats: d.Stats, Counters: d.Analyzer().Stats}, nil
}

// AnalyzeCorpus analyzes a pre-built corpus — a thin wrapper over
// AnalyzeCorpusRequest kept for compatibility.
func AnalyzeCorpus(src Corpus, opts Options) (*CorpusReport, error) {
	return AnalyzeCorpusRequest(context.Background(), CorpusRequest{Source: src, Options: opts})
}

// AnalyzeCorpusContext is AnalyzeCorpus honoring a context — a thin wrapper
// over AnalyzeCorpusRequest kept for compatibility.
func AnalyzeCorpusContext(ctx context.Context, src Corpus, opts Options) (*CorpusReport, error) {
	return AnalyzeCorpusRequest(ctx, CorpusRequest{Source: src, Options: opts})
}

// openStore loads the snapshot at opts.StorePath, or returns a fresh store
// when the file does not exist yet (first run).
func openStore(opts Options) (*CorpusStore, error) {
	f, err := os.Open(opts.StorePath)
	if errors.Is(err, fs.ErrNotExist) {
		return corpus.NewStore(opts), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return corpus.LoadStore(f, opts)
}

// saveStore writes the store atomically-enough for a single writer: to a
// temp file in the same directory, then rename.
func saveStore(path string, s *CorpusStore) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".exactdep-store-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := s.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
