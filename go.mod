module exactdep

go 1.22
